#include "vt/trace_shard.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

#include "support/common.hpp"
#include "support/strings.hpp"
#include "telemetry/metrics.hpp"
#include "vt/trace_format.hpp"

namespace dyntrace::vt {

namespace {

/// Process-unique spill-file sequence (several stores can live at once, and
/// parallel ctest runs share /tmp -- the OS pid disambiguates those).
std::atomic<std::uint64_t> g_spill_seq{0};

std::string make_run_base(const ShardOptions& options, std::int32_t pid) {
  namespace fs = std::filesystem;
  const fs::path dir =
      options.spill_dir.empty() ? fs::temp_directory_path() : fs::path(options.spill_dir);
  const auto seq = g_spill_seq.fetch_add(1, std::memory_order_relaxed);
  return (dir / str::format("dyntrace-%d-%llu-shard%d", ::getpid(),
                            static_cast<unsigned long long>(seq), pid))
      .string();
}

/// Write `size` bytes to `path` and fsync before closing, so a subsequent
/// rename publishes a fully durable file (the crash-safety contract).
void write_file_durably(const std::string& path, const std::uint8_t* data,
                        std::size_t size) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  DT_EXPECT(fd >= 0, "cannot open shard spill file '", path, "'");
  std::size_t done = 0;
  while (done < size) {
    const ::ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      ::close(fd);
      fail("I/O error spilling shard to '", path, "'");
    }
    done += static_cast<std::size_t>(n);
  }
  const int synced = ::fsync(fd);
  const int closed = ::close(fd);
  DT_EXPECT(synced == 0 && closed == 0, "I/O error syncing shard spill file '", path, "'");
}

}  // namespace

TraceShard::TraceShard(std::int32_t pid, ShardOptions options)
    : pid_(pid),
      options_(std::move(options)),
      run_base_(make_run_base(options_, pid)),
      suppression_(options_.suppression_table_capacity) {}

TraceShard::~TraceShard() {
  for (const Run& run : runs_) std::remove(run.path.c_str());
}

void TraceShard::append(const Event& event) {
  if (torn_) {
    // The writer died mid-spill; whatever it would have logged next is gone.
    ++dropped_records_;
    return;
  }
  if (empty()) {
    min_time_ = max_time_ = event.time;
  } else {
    min_time_ = std::min(min_time_, event.time);
    max_time_ = std::max(max_time_, event.time);
  }
  tail_.push_back(event);
  if (options_.spill_budget_bytes > 0 &&
      tail_.size() * sizeof(Event) >= options_.spill_budget_bytes) {
    spill();
  }
}

void TraceShard::append_batch(const Event* events, std::size_t count) {
  if (count == 0) return;
  if (torn_) {
    dropped_records_ += count;
    return;
  }
  if (empty()) min_time_ = max_time_ = events[0].time;
  tail_.reserve(tail_.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    min_time_ = std::min(min_time_, events[i].time);
    max_time_ = std::max(max_time_, events[i].time);
    tail_.push_back(events[i]);
    if (options_.spill_budget_bytes > 0 &&
        tail_.size() * sizeof(Event) >= options_.spill_budget_bytes) {
      spill();
      if (torn_) {
        dropped_records_ += count - i - 1;
        return;
      }
    }
  }
}

void TraceShard::spill() {
  if (tail_.empty()) return;
  // Each run must be internally sorted for the k-way merge; per-process
  // streams are time-ordered already, so this is nearly a no-op, but it
  // also makes the merge robust against out-of-order appends (clock
  // adjustments, adversarial input).
  std::stable_sort(tail_.begin(), tail_.end(), EventOrder{});
  std::vector<std::uint8_t> bytes;
  V2EncodeStats enc;
  if (options_.format == TraceFormat::kV2) {
    SuppressionTable* table =
        options_.suppression_table_capacity > 0 ? &suppression_ : nullptr;
    enc = encode_v2_blocks(tail_.data(), tail_.size(), table, bytes);
  } else {
    bytes.resize(tail_.size() * kSpillFrameBytes);
    for (std::size_t i = 0; i < tail_.size(); ++i) {
      encode_spill_frame(tail_[i], bytes.data() + i * kSpillFrameBytes);
    }
  }
  const std::uint64_t run_index = runs_.size();
  std::size_t written = bytes.size();
  if (options_.spill_fault) {
    written = std::min(written, options_.spill_fault(pid_, run_index, bytes.size()));
  }
  const std::string final_path =
      run_base_ + str::format(".run%llu", static_cast<unsigned long long>(run_index));
  const std::string tmp_path = final_path + ".tmp";
  write_file_durably(tmp_path, bytes.data(), written);

  telemetry::Registry& reg = telemetry::current();
  const telemetry::Metrics& tm = reg.metrics();
  reg.add(tm.vt_spill_runs);
  reg.add(tm.vt_spill_bytes, written);
  reg.add(tm.vt_spill_records, tail_.size());
  spilled_bytes_ += written;
  if (options_.format == TraceFormat::kV2) {
    suppressed_records_ += enc.suppressed;
    super_records_ += enc.supers;
    reg.add(tm.vt_suppression_hits, enc.suppressed);
    reg.add(tm.vt_suppression_supers, enc.supers);
    const std::uint64_t new_evictions = suppression_.evictions() - noted_evictions_;
    if (new_evictions > 0) reg.add(tm.vt_suppression_evictions, new_evictions);
    noted_evictions_ = suppression_.evictions();
    reg.observe(tm.vt_bytes_per_event, written / tail_.size());
  } else {
    reg.observe(tm.vt_bytes_per_event, kSpillFrameBytes);
  }
  if (written == bytes.size()) {
    // Atomic publish: the run exists completely or not at all.
    DT_EXPECT(std::rename(tmp_path.c_str(), final_path.c_str()) == 0,
              "cannot publish shard spill run '", final_path, "'");
    runs_.push_back(Run{final_path, tail_.size(), false});
    spilled_records_ += tail_.size();
  } else {
    // Torn mid-write: the rename never happened, so the run is still a
    // `.tmp`.  Salvage everything complete and CRC-valid before the tear
    // (v1: whole frames, v2: whole blocks).
    const std::uint64_t salvaged = options_.format == TraceFormat::kV2
                                       ? salvage_v2_scan(tmp_path).records
                                       : salvage_frame_count(tmp_path);
    runs_.push_back(Run{tmp_path, salvaged, true});
    spilled_records_ += salvaged;
    salvaged_records_ += salvaged;
    lost_records_ += tail_.size() - salvaged;
    torn_ = true;
    reg.add(tm.vt_torn_shards);
    reg.add(tm.vt_salvaged_records, salvaged);
    reg.add(tm.vt_lost_records, tail_.size() - salvaged);
  }
  tail_.clear();
}

std::vector<std::unique_ptr<EventCursor>> TraceShard::run_cursors() const {
  std::vector<std::unique_ptr<EventCursor>> cursors;
  cursors.reserve(runs_.size() + 1);
  for (const Run& run : runs_) {
    if (run.count == 0) continue;
    if (options_.format == TraceFormat::kV2) {
      cursors.push_back(std::make_unique<BlockRunCursor>(run.path, 0, run.count));
    } else {
      cursors.push_back(std::make_unique<FramedRunCursor>(run.path, 0, run.count));
    }
  }
  if (!tail_.empty()) {
    std::vector<Event> sorted_tail = tail_;
    std::stable_sort(sorted_tail.begin(), sorted_tail.end(), EventOrder{});
    cursors.push_back(std::make_unique<VectorCursor>(std::move(sorted_tail)));
  }
  return cursors;
}

std::unique_ptr<EventCursor> TraceShard::cursor() const {
  return std::make_unique<MergeCursor>(run_cursors());
}

}  // namespace dyntrace::vt
