#include "vt/trace_format.hpp"

#include "support/common.hpp"

namespace dyntrace::vt {

namespace {

void put_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

void put_u32_le(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32_le(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

TraceFormat trace_format_from_string(const std::string& name) {
  if (name == "v1" || name == "1") return TraceFormat::kV1;
  if (name == "v2" || name == "2") return TraceFormat::kV2;
  fail("unknown trace format '", name, "' (expected v1 or v2)");
}

std::string to_string(TraceFormat format) {
  return format == TraceFormat::kV1 ? "v1" : "v2";
}

void encode_trace_header(TraceFormat format, std::uint64_t record_count, std::uint8_t* out) {
  out[0] = kTraceMagic[0];
  out[1] = kTraceMagic[1];
  out[2] = kTraceMagic[2];
  out[3] = kTraceMagic[3];
  put_u16(out + 4, static_cast<std::uint16_t>(format));
  // v1 advertises its fixed record size; v2 records are variable-length
  // (delta blocks), marked by record size 0.
  put_u16(out + 6, format == TraceFormat::kV1 ? static_cast<std::uint16_t>(kTraceRecordBytes)
                                              : 0);
  put_u64(out + 8, record_count);
}

TraceHeader decode_trace_header(const std::uint8_t* data, std::size_t size,
                                const std::string& context) {
  DT_EXPECT(size >= kTraceHeaderBytes, context, ": truncated binary trace header (", size,
            " of ", kTraceHeaderBytes, " bytes)");
  DT_EXPECT(data[0] == kTraceMagic[0] && data[1] == kTraceMagic[1] &&
                data[2] == kTraceMagic[2] && data[3] == kTraceMagic[3],
            context, ": not a binary trace file (bad magic)");
  const std::uint16_t version = get_u16(data + 4);
  DT_EXPECT(version == kTraceFormatV1 || version == kTraceFormatV2, context,
            ": trace format version ", version,
            " is not supported by this reader (it speaks v", kTraceFormatV1, " and v",
            kTraceFormatV2, "; rewrite the file with a matching dynprof build)");
  const std::uint16_t record_bytes = get_u16(data + 6);
  if (version == kTraceFormatV1) {
    DT_EXPECT(record_bytes == kTraceRecordBytes, context, ": unexpected v1 record size ",
              record_bytes, " (expected ", kTraceRecordBytes, ")");
  } else {
    DT_EXPECT(record_bytes == 0, context, ": unexpected v2 record size ", record_bytes,
              " (v2 records are variable-length; expected 0)");
  }
  TraceHeader header;
  header.version = version;
  header.record_count = get_u64(data + 8);
  return header;
}

void encode_event(const Event& event, std::uint8_t* out) {
  put_u64(out, static_cast<std::uint64_t>(event.time));
  put_u64(out + 8, static_cast<std::uint64_t>(event.aux));
  put_u32_le(out + 16, static_cast<std::uint32_t>(event.pid));
  put_u32_le(out + 20, static_cast<std::uint32_t>(event.tid));
  put_u32_le(out + 24, static_cast<std::uint32_t>(event.code));
  out[28] = static_cast<std::uint8_t>(event.kind);
  out[29] = out[30] = out[31] = 0;
}

Event decode_event(const std::uint8_t* in, const std::string& context) {
  DT_EXPECT(valid_event_kind(in[28]), context, ": unknown event kind ",
            static_cast<int>(in[28]));
  Event e;
  e.time = static_cast<sim::TimeNs>(get_u64(in));
  e.aux = static_cast<std::int64_t>(get_u64(in + 8));
  e.pid = static_cast<std::int32_t>(get_u32_le(in + 16));
  e.tid = static_cast<std::int32_t>(get_u32_le(in + 20));
  e.code = static_cast<std::int32_t>(get_u32_le(in + 24));
  e.kind = static_cast<EventKind>(in[28]);
  return e;
}

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  constexpr Crc32Table() : entries{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

constexpr Crc32Table kCrc32Table{};

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kCrc32Table.entries[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void encode_spill_frame(const Event& event, std::uint8_t* out) {
  encode_event(event, out);
  put_u32_le(out + kTraceRecordBytes, crc32(out, kTraceRecordBytes));
}

bool decode_spill_frame(const std::uint8_t* in, Event& out) {
  if (get_u32_le(in + kTraceRecordBytes) != crc32(in, kTraceRecordBytes)) return false;
  if (!valid_event_kind(in[28])) return false;
  out.time = static_cast<sim::TimeNs>(get_u64(in));
  out.aux = static_cast<std::int64_t>(get_u64(in + 8));
  out.pid = static_cast<std::int32_t>(get_u32_le(in + 16));
  out.tid = static_cast<std::int32_t>(get_u32_le(in + 20));
  out.code = static_cast<std::int32_t>(get_u32_le(in + 24));
  out.kind = static_cast<EventKind>(in[28]);
  return true;
}

}  // namespace dyntrace::vt
