// The Vampirtrace symbol deactivation table.
//
// At VT_init the configuration file is read and a table of deactivated
// symbols is built; every VT_begin / VT_end performs a lookup into this
// table and bails out early when the current function is off (paper §4.2).
// Dynamic control of instrumentation (§5) re-applies directives to this
// table at safe points via VT_confsync.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "image/symbols.hpp"
#include "support/config.hpp"

namespace dyntrace::vt {

/// One activation/deactivation directive ("deactivate = hypre_*").
struct FilterDirective {
  bool activate = false;
  std::string pattern;
};

/// An ordered directive list; later directives win.
using FilterProgram = std::vector<FilterDirective>;

/// Parse the [filter] section of a VT config file.
FilterProgram parse_filter(const ConfigFile& config);

/// Serialized size in bytes (what VT_confsync broadcasts).
std::int64_t serialized_size(const FilterProgram& program);

class FilterTable {
 public:
  /// Build the table by resolving a directive program against a symbol
  /// table.  All symbols start active.
  FilterTable() = default;
  FilterTable(const image::SymbolTable& symbols, const FilterProgram& program);

  /// Apply additional directives (VT_confsync reconfiguration).
  void apply(const image::SymbolTable& symbols, const FilterProgram& program);

  /// The fast-path lookup of VT_begin/VT_end.
  bool deactivated(image::FunctionId fn) const {
    return fn < deactivated_.size() && deactivated_[fn] != 0;
  }

  /// True when any directive was ever applied -- an empty table costs no
  /// lookup (the Full policy reads no config file).
  bool enabled() const { return enabled_; }

  std::size_t deactivated_count() const;

 private:
  std::vector<std::uint8_t> deactivated_;
  bool enabled_ = false;
};

}  // namespace dyntrace::vt
