#include "vt/trace_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "support/common.hpp"
#include "support/strings.hpp"
#include "vt/trace_format.hpp"

namespace dyntrace::vt {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter: return "enter";
    case EventKind::kLeave: return "leave";
    case EventKind::kMpiBegin: return "mpi_begin";
    case EventKind::kMpiEnd: return "mpi_end";
    case EventKind::kMsgSend: return "msg_send";
    case EventKind::kMsgRecv: return "msg_recv";
    case EventKind::kParallelBegin: return "par_begin";
    case EventKind::kParallelEnd: return "par_end";
    case EventKind::kWorkerBegin: return "worker_begin";
    case EventKind::kWorkerEnd: return "worker_end";
    case EventKind::kMarker: return "marker";
  }
  return "?";
}

namespace {

EventKind kind_from_string(std::string_view s) {
  for (int k = 0; k <= static_cast<int>(EventKind::kMarker); ++k) {
    if (to_string(static_cast<EventKind>(k)) == s) return static_cast<EventKind>(k);
  }
  fail("unknown event kind '", std::string(s), "'");
}

}  // namespace

TraceShard& TraceStore::shard(std::int32_t pid) {
  std::lock_guard<std::mutex> lock(*mutex_);
  auto& slot = shards_[pid];
  if (!slot) slot = std::make_unique<TraceShard>(pid, options_);
  return *slot;
}

std::size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::size_t total = 0;
  for (const auto& [pid, shard] : shards_) total += shard->size();
  return total;
}

std::vector<std::int32_t> TraceStore::pids() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::vector<std::int32_t> out;
  out.reserve(shards_.size());
  for (const auto& [pid, shard] : shards_) {
    if (!shard->empty()) out.push_back(pid);
  }
  return out;
}

bool TraceStore::time_bounds(sim::TimeNs* lo, sim::TimeNs* hi) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  bool any = false;
  sim::TimeNs min_t = 0, max_t = 0;
  for (const auto& [pid, shard] : shards_) {
    if (shard->empty()) continue;
    if (!any || shard->min_time() < min_t) min_t = shard->min_time();
    if (!any || shard->max_time() > max_t) max_t = shard->max_time();
    any = true;
  }
  if (!any) return false;
  if (lo != nullptr) *lo = min_t;
  if (hi != nullptr) *hi = max_t;
  return true;
}

std::unique_ptr<EventCursor> TraceStore::merge_cursor() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::vector<std::unique_ptr<EventCursor>> runs;
  // Shards in pid order, runs in spill order: equal-key ties in the merge
  // then resolve to the earlier-appended run (append-stable, like the
  // stable_sort the monolithic store used).
  for (const auto& [pid, shard] : shards_) {
    for (auto& cursor : shard->run_cursors()) runs.push_back(std::move(cursor));
  }
  return std::make_unique<MergeCursor>(std::move(runs));
}

std::unique_ptr<EventCursor> TraceStore::process_cursor(std::int32_t pid) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  const auto it = shards_.find(pid);
  if (it == shards_.end()) {
    return std::make_unique<VectorCursor>(std::vector<Event>{});
  }
  return it->second->cursor();
}

std::vector<Event> TraceStore::merged() const {
  auto cursor = merge_cursor();
  return collect(*cursor);
}

std::uint64_t TraceStore::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  auto cursor = merge_cursor();
  Event e;
  while (cursor->next(e)) {
    mix(static_cast<std::uint64_t>(e.time));
    mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.pid)) << 32) |
        static_cast<std::uint32_t>(e.tid));
    mix((static_cast<std::uint64_t>(static_cast<std::uint8_t>(e.kind)) << 32) |
        static_cast<std::uint32_t>(e.code));
    mix(static_cast<std::uint64_t>(e.aux));
  }
  return h;
}

TraceStore::SalvageStats TraceStore::salvage_stats() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  SalvageStats stats;
  for (const auto& [pid, shard] : shards_) {
    if (shard->torn()) ++stats.torn_shards;
    stats.salvaged_records += shard->salvaged_records();
    stats.lost_records += shard->lost_records();
  }
  return stats;
}

TraceStore::VolumeStats TraceStore::volume_stats() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  VolumeStats stats;
  for (const auto& [pid, shard] : shards_) {
    stats.spilled_bytes += shard->spilled_bytes();
    stats.spilled_records += shard->spilled_records();
    stats.suppressed_records += shard->suppressed_records();
    stats.super_records += shard->super_records();
    stats.table_evictions += shard->suppression_table().evictions();
  }
  return stats;
}

std::vector<Event> TraceStore::for_process(std::int32_t pid) const {
  auto cursor = process_cursor(pid);
  return collect(*cursor);
}

std::vector<Event> TraceStore::events() const {
  std::vector<Event> out;
  out.reserve(size());
  for (const std::int32_t pid : pids()) {
    auto cursor = process_cursor(pid);
    Event e;
    while (cursor->next(e)) out.push_back(e);
  }
  return out;
}

void TraceStore::write(const std::string& path) const {
  std::ofstream out(path);
  DT_EXPECT(out.good(), "cannot open trace file '", path, "' for writing");
  out << "# dyntrace trace v1: time_ns pid tid kind code aux\n";
  auto cursor = merge_cursor();
  Event e;
  while (cursor->next(e)) {
    out << e.time << '\t' << e.pid << '\t' << e.tid << '\t' << to_string(e.kind) << '\t'
        << e.code << '\t' << e.aux << '\n';
  }
  DT_EXPECT(out.good(), "I/O error writing trace file '", path, "'");
}

void TraceStore::write_binary(const std::string& path, TraceFormat format) const {
  std::ofstream out(path, std::ios::binary);
  DT_EXPECT(out.good(), "cannot open trace file '", path, "' for writing");
  std::uint8_t header[kTraceHeaderBytes];
  encode_trace_header(format, size(), header);
  out.write(reinterpret_cast<const char*>(header), sizeof(header));

  auto cursor = merge_cursor();
  Event e;
  if (format == TraceFormat::kV2) {
    // Buffer whole blocks of merged events and encode them with the same
    // suppression codec the spill path uses (one table for the file).
    SuppressionTable table(1024);
    std::vector<Event> batch;
    batch.reserve(kBlockRecords);
    std::vector<std::uint8_t> encoded;
    const auto flush = [&] {
      encoded.clear();
      encode_v2_blocks(batch.data(), batch.size(), &table, encoded);
      out.write(reinterpret_cast<const char*>(encoded.data()),
                static_cast<std::streamsize>(encoded.size()));
      batch.clear();
    };
    while (cursor->next(e)) {
      batch.push_back(e);
      if (batch.size() == kBlockRecords) flush();
    }
    if (!batch.empty()) flush();
  } else {
    std::vector<std::uint8_t> chunk;
    chunk.reserve(4096 * kTraceRecordBytes);
    std::uint8_t record[kTraceRecordBytes];
    while (cursor->next(e)) {
      encode_event(e, record);
      chunk.insert(chunk.end(), record, record + kTraceRecordBytes);
      if (chunk.size() >= 4096 * kTraceRecordBytes) {
        out.write(reinterpret_cast<const char*>(chunk.data()),
                  static_cast<std::streamsize>(chunk.size()));
        chunk.clear();
      }
    }
    if (!chunk.empty()) {
      out.write(reinterpret_cast<const char*>(chunk.data()),
                static_cast<std::streamsize>(chunk.size()));
    }
  }
  DT_EXPECT(out.good(), "I/O error writing trace file '", path, "'");
}

std::unique_ptr<EventCursor> TraceStore::open_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DT_EXPECT(in.good(), "cannot open trace file '", path, "'");
  std::uint8_t header[kTraceHeaderBytes];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  const TraceHeader h =
      decode_trace_header(header, static_cast<std::size_t>(in.gcount()), path);
  if (h.version == kTraceFormatV2) {
    // Blocks are variable-length; framing is validated per block (CRC) as
    // the cursor streams.
    return std::make_unique<BlockRunCursor>(path, kTraceHeaderBytes, h.record_count);
  }
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  DT_EXPECT(!ec && file_size == kTraceHeaderBytes + h.record_count * kTraceRecordBytes,
            path, ": trace payload size does not match header (", h.record_count,
            " record(s) declared)");
  return std::make_unique<FileRunCursor>(path, kTraceHeaderBytes, h.record_count);
}

TraceStore TraceStore::read(const std::string& path) {
  {
    std::ifstream probe(path, std::ios::binary);
    DT_EXPECT(probe.good(), "cannot open trace file '", path, "'");
    std::uint8_t magic[4] = {0, 0, 0, 0};
    probe.read(reinterpret_cast<char*>(magic), sizeof(magic));
    if (probe.gcount() == 4 && magic[0] == kTraceMagic[0] && magic[1] == kTraceMagic[1] &&
        magic[2] == kTraceMagic[2] && magic[3] == kTraceMagic[3]) {
      TraceStore store;
      auto cursor = open_binary(path);
      Event e;
      while (cursor->next(e)) store.append(e);
      return store;
    }
  }

  std::ifstream in(path);
  DT_EXPECT(in.good(), "cannot open trace file '", path, "'");
  TraceStore store;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = str::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = str::split(std::string(trimmed), '\t');
    DT_EXPECT(fields.size() == 6, path, ":", line_no, ": expected 6 fields, got ",
              fields.size());
    Event e;
    const auto time = str::parse_i64(fields[0]);
    const auto pid = str::parse_i64(fields[1]);
    const auto tid = str::parse_i64(fields[2]);
    const auto code = str::parse_i64(fields[4]);
    const auto aux = str::parse_i64(fields[5]);
    DT_EXPECT(time && pid && tid && code && aux, path, ":", line_no, ": bad numeric field");
    e.time = *time;
    e.pid = static_cast<std::int32_t>(*pid);
    e.tid = static_cast<std::int32_t>(*tid);
    try {
      e.kind = kind_from_string(fields[3]);
    } catch (const Error&) {
      fail(path, ":", line_no, ": unknown event kind '", fields[3], "'");
    }
    e.code = static_cast<std::int32_t>(*code);
    e.aux = *aux;
    store.append(e);
  }
  return store;
}

}  // namespace dyntrace::vt
