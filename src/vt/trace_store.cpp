#include "vt/trace_store.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::vt {

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter: return "enter";
    case EventKind::kLeave: return "leave";
    case EventKind::kMpiBegin: return "mpi_begin";
    case EventKind::kMpiEnd: return "mpi_end";
    case EventKind::kMsgSend: return "msg_send";
    case EventKind::kMsgRecv: return "msg_recv";
    case EventKind::kParallelBegin: return "par_begin";
    case EventKind::kParallelEnd: return "par_end";
    case EventKind::kWorkerBegin: return "worker_begin";
    case EventKind::kWorkerEnd: return "worker_end";
    case EventKind::kMarker: return "marker";
  }
  return "?";
}

namespace {

EventKind kind_from_string(std::string_view s) {
  for (int k = 0; k <= static_cast<int>(EventKind::kMarker); ++k) {
    if (to_string(static_cast<EventKind>(k)) == s) return static_cast<EventKind>(k);
  }
  fail("unknown event kind '", std::string(s), "'");
}

}  // namespace

std::vector<Event> TraceStore::merged() const {
  std::vector<Event> out = events_;
  std::stable_sort(out.begin(), out.end(), EventOrder{});
  return out;
}

std::vector<Event> TraceStore::for_process(std::int32_t pid) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.pid == pid) out.push_back(e);
  }
  return out;
}

void TraceStore::write(const std::string& path) const {
  std::ofstream out(path);
  DT_EXPECT(out.good(), "cannot open trace file '", path, "' for writing");
  out << "# dyntrace trace v1: time_ns pid tid kind code aux\n";
  for (const auto& e : merged()) {
    out << e.time << '\t' << e.pid << '\t' << e.tid << '\t' << to_string(e.kind) << '\t'
        << e.code << '\t' << e.aux << '\n';
  }
  DT_EXPECT(out.good(), "I/O error writing trace file '", path, "'");
}

TraceStore TraceStore::read(const std::string& path) {
  std::ifstream in(path);
  DT_EXPECT(in.good(), "cannot open trace file '", path, "'");
  TraceStore store;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = str::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = str::split(std::string(trimmed), '\t');
    DT_EXPECT(fields.size() == 6, path, ":", line_no, ": expected 6 fields, got ",
              fields.size());
    Event e;
    const auto time = str::parse_i64(fields[0]);
    const auto pid = str::parse_i64(fields[1]);
    const auto tid = str::parse_i64(fields[2]);
    const auto code = str::parse_i64(fields[4]);
    const auto aux = str::parse_i64(fields[5]);
    DT_EXPECT(time && pid && tid && code && aux, path, ":", line_no, ": bad numeric field");
    e.time = *time;
    e.pid = static_cast<std::int32_t>(*pid);
    e.tid = static_cast<std::int32_t>(*tid);
    e.kind = kind_from_string(fields[3]);
    e.code = static_cast<std::int32_t>(*code);
    e.aux = *aux;
    store.append(e);
  }
  return store;
}

}  // namespace dyntrace::vt
