// The compact binary trace encoding (v1).
//
// Layout, all little-endian and fixed width so a record can be located by
// index without parsing its predecessors:
//
//   header (16 bytes):
//     [0..4)   magic "DTRC"
//     [4..6)   format version (u16, currently 1)
//     [6..8)   record size in bytes (u16, currently 32)
//     [8..16)  record count (u64)
//   records (32 bytes each):
//     [0..8)   time (i64 ns)
//     [8..16)  aux (i64)
//     [16..20) pid (i32)
//     [20..24) tid (i32)
//     [24..28) code (i32)
//     [28]     kind (u8)
//     [29..32) reserved, zero
//
// The same record encoding is used by whole-trace files written by
// TraceStore::write_binary (header + records).  Shard spill runs wrap each
// record in a *frame* -- the 32 record bytes followed by their CRC32
// (little-endian u32, 36 bytes total) -- so a run torn mid-write is
// recoverable: every complete, checksummed frame before the tear is salvaged
// and the corrupt tail is skipped and counted (see TraceShard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "vt/event.hpp"

namespace dyntrace::vt {

inline constexpr std::uint8_t kTraceMagic[4] = {'D', 'T', 'R', 'C'};
inline constexpr std::uint16_t kTraceFormatVersion = 1;
inline constexpr std::size_t kTraceHeaderBytes = 16;
inline constexpr std::size_t kTraceRecordBytes = 32;

/// True if `kind` is a defined EventKind discriminant.
bool valid_event_kind(std::uint8_t kind);

/// Serialize the file header into `out` (kTraceHeaderBytes bytes).
void encode_trace_header(std::uint64_t record_count, std::uint8_t* out);

/// Validate magic/version/record size of a header and return the record
/// count; throws dyntrace::Error (mentioning `context`, typically the file
/// path) on mismatch or if fewer than kTraceHeaderBytes bytes are present.
std::uint64_t decode_trace_header(const std::uint8_t* data, std::size_t size,
                                  const std::string& context);

/// Serialize one event into `out` (kTraceRecordBytes bytes).
void encode_event(const Event& event, std::uint8_t* out);

/// Parse one record; throws dyntrace::Error on an unknown event kind.
Event decode_event(const std::uint8_t* in, const std::string& context);

// --- CRC-framed spill records ----------------------------------------------

inline constexpr std::size_t kSpillFrameBytes = kTraceRecordBytes + 4;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `size` bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Serialize one event as a spill frame: record bytes + CRC32 of them
/// (kSpillFrameBytes bytes).
void encode_spill_frame(const Event& event, std::uint8_t* out);

/// Validate and parse one spill frame.  Returns false (without throwing)
/// on CRC mismatch or an unknown event kind -- the salvage path treats
/// either as the torn tail of a run.
bool decode_spill_frame(const std::uint8_t* in, Event& out);

}  // namespace dyntrace::vt
