// The compact binary trace encodings (v1 and v2).
//
// v1 -- fixed width, all little-endian, so a record can be located by index
// without parsing its predecessors:
//
//   header (16 bytes):
//     [0..4)   magic "DTRC"
//     [4..6)   format version (u16)
//     [6..8)   record size in bytes (u16; 32 for v1, 0 for v2 = variable)
//     [8..16)  record count (u64)
//   records (32 bytes each):
//     [0..8)   time (i64 ns)
//     [8..16)  aux (i64)
//     [16..20) pid (i32)
//     [20..24) tid (i32)
//     [24..28) code (i32)
//     [28]     kind (u8)
//     [29..32) reserved, zero
//
// v2 -- the same 16-byte file header (version 2, record size 0) followed by
// self-contained CRC-framed *blocks* of varint zig-zag delta records with
// per-block dictionaries and counted super-records (trace_codec_v2.hpp).
//
// Spill runs wrap records for crash safety instead of using a file header:
// v1 wraps each record in a *frame* -- the 32 record bytes followed by
// their CRC32 (little-endian u32, 36 bytes total); v2 spill runs are a bare
// block sequence (each block already carries its own magic + CRC).  Either
// way a run torn mid-write is recoverable: every complete, checksummed
// frame/block before the tear is salvaged and the corrupt tail is skipped
// and counted (see TraceShard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "vt/event.hpp"

namespace dyntrace::vt {

inline constexpr std::uint8_t kTraceMagic[4] = {'D', 'T', 'R', 'C'};

/// On-disk encoding generation.  v1: fixed 32-byte records, CRC per spill
/// frame.  v2: varint delta blocks with per-block dictionaries, suppression
/// super-records, and CRC per block.
enum class TraceFormat : std::uint16_t {
  kV1 = 1,
  kV2 = 2,
};

inline constexpr std::uint16_t kTraceFormatV1 = 1;
inline constexpr std::uint16_t kTraceFormatV2 = 2;
/// Newest version this reader/writer understands (the write default).
inline constexpr std::uint16_t kTraceFormatVersion = kTraceFormatV2;
inline constexpr std::size_t kTraceHeaderBytes = 16;
inline constexpr std::size_t kTraceRecordBytes = 32;

/// Parse "v1"/"v2" (or bare "1"/"2"); throws dyntrace::Error on anything
/// else, naming the accepted spellings.
TraceFormat trace_format_from_string(const std::string& name);
std::string to_string(TraceFormat format);

/// True if `kind` is a defined EventKind discriminant.
inline bool valid_event_kind(std::uint8_t kind) {
  return kind <= static_cast<std::uint8_t>(EventKind::kMarker);
}

/// Decoded file-header fields (see decode_trace_header).
struct TraceHeader {
  std::uint16_t version = 0;
  std::uint64_t record_count = 0;
};

/// Serialize the file header into `out` (kTraceHeaderBytes bytes).
void encode_trace_header(TraceFormat format, std::uint64_t record_count, std::uint8_t* out);

/// Validate magic/version/record size of a header and return the decoded
/// fields; throws dyntrace::Error (mentioning `context`, typically the file
/// path) on mismatch or if fewer than kTraceHeaderBytes bytes are present.
/// A version this reader does not implement is rejected with an explicit
/// versioned message (which versions the file and the reader speak), so a
/// v1-only consumer fails loudly on a v2 file instead of misparsing it.
TraceHeader decode_trace_header(const std::uint8_t* data, std::size_t size,
                                const std::string& context);

/// Serialize one event into `out` (kTraceRecordBytes bytes, v1 layout).
void encode_event(const Event& event, std::uint8_t* out);

/// Parse one v1 record; throws dyntrace::Error on an unknown event kind.
Event decode_event(const std::uint8_t* in, const std::string& context);

// --- little-endian + varint primitives (shared with the v2 block codec) ----

void put_u32_le(std::uint8_t* out, std::uint32_t v);
std::uint32_t get_u32_le(const std::uint8_t* in);

/// Longest LEB128 encoding of a u64 (10 bytes).
inline constexpr std::size_t kMaxVarintBytes = 10;

/// LEB128-encode `v` into `out` (at least kMaxVarintBytes writable bytes);
/// returns the encoded length.
inline std::size_t put_varint(std::uint8_t* out, std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80u) {
    out[n++] = static_cast<std::uint8_t>(v | 0x80u);
    v >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(v);
  return n;
}

/// Decode one LEB128 varint from [*p, end); advances *p past it.  Returns
/// false (without advancing past `end`) on truncation or overlong input.
/// Inline with a one-byte fast path: the block decoder calls this five
/// times per record, and most deltas and dictionary indices fit 7 bits.
inline bool get_varint(const std::uint8_t** p, const std::uint8_t* end, std::uint64_t* out) {
  const std::uint8_t* cur = *p;
  if (cur < end && *cur < 0x80u) {
    *out = *cur;
    *p = cur + 1;
    return true;
  }
  std::uint64_t v = 0;
  int shift = 0;
  while (cur < end && shift < 70) {
    const std::uint8_t byte = *cur++;
    v |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      // Reject overlong 10-byte encodings whose last byte carries bits a
      // u64 cannot hold (they would silently alias another value).
      if (shift == 63 && byte > 1) return false;
      *p = cur;
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated (ran off `end`) or longer than 10 bytes
}

/// Zig-zag fold: small negative and positive deltas both become small
/// unsigned varints.
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// --- CRC-framed spill records (v1) -----------------------------------------

inline constexpr std::size_t kSpillFrameBytes = kTraceRecordBytes + 4;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `size` bytes.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Serialize one event as a v1 spill frame: record bytes + CRC32 of them
/// (kSpillFrameBytes bytes).
void encode_spill_frame(const Event& event, std::uint8_t* out);

/// Validate and parse one v1 spill frame.  Returns false (without throwing)
/// on CRC mismatch or an unknown event kind -- the salvage path treats
/// either as the torn tail of a run.
bool decode_spill_frame(const std::uint8_t* in, Event& out);

}  // namespace dyntrace::vt
