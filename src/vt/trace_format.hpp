// The compact binary trace encoding (v1).
//
// Layout, all little-endian and fixed width so a record can be located by
// index without parsing its predecessors:
//
//   header (16 bytes):
//     [0..4)   magic "DTRC"
//     [4..6)   format version (u16, currently 1)
//     [6..8)   record size in bytes (u16, currently 32)
//     [8..16)  record count (u64)
//   records (32 bytes each):
//     [0..8)   time (i64 ns)
//     [8..16)  aux (i64)
//     [16..20) pid (i32)
//     [20..24) tid (i32)
//     [24..28) code (i32)
//     [28]     kind (u8)
//     [29..32) reserved, zero
//
// The same record encoding is used for shard spill runs (headerless: a run
// is located by byte offset + count kept in the shard's run index) and for
// whole-trace files written by TraceStore::write_binary (header + records).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "vt/event.hpp"

namespace dyntrace::vt {

inline constexpr std::uint8_t kTraceMagic[4] = {'D', 'T', 'R', 'C'};
inline constexpr std::uint16_t kTraceFormatVersion = 1;
inline constexpr std::size_t kTraceHeaderBytes = 16;
inline constexpr std::size_t kTraceRecordBytes = 32;

/// True if `kind` is a defined EventKind discriminant.
bool valid_event_kind(std::uint8_t kind);

/// Serialize the file header into `out` (kTraceHeaderBytes bytes).
void encode_trace_header(std::uint64_t record_count, std::uint8_t* out);

/// Validate magic/version/record size of a header and return the record
/// count; throws dyntrace::Error (mentioning `context`, typically the file
/// path) on mismatch or if fewer than kTraceHeaderBytes bytes are present.
std::uint64_t decode_trace_header(const std::uint8_t* data, std::size_t size,
                                  const std::string& context);

/// Serialize one event into `out` (kTraceRecordBytes bytes).
void encode_event(const Event& event, std::uint8_t* out);

/// Parse one record; throws dyntrace::Error on an unknown event kind.
Event decode_event(const std::uint8_t* in, const std::string& context);

}  // namespace dyntrace::vt
