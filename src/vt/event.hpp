// Trace event records (the contents of a VGV trace file).
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace dyntrace::vt {

enum class EventKind : std::uint8_t {
  kEnter,          ///< function entry (code = VT symbol id)
  kLeave,          ///< function exit (code = VT symbol id)
  kMpiBegin,       ///< MPI call entered (code = mpi::Op)
  kMpiEnd,         ///< MPI call left (code = mpi::Op, aux = bytes)
  kMsgSend,        ///< message injected (code = peer rank, aux = bytes)
  kMsgRecv,        ///< message received (code = peer rank, aux = bytes)
  kParallelBegin,  ///< OpenMP parallel region entered (code = region id)
  kParallelEnd,    ///< OpenMP parallel region left (code = region id)
  kWorkerBegin,    ///< OpenMP worker started in a region (code = region id)
  kWorkerEnd,      ///< OpenMP worker finished in a region (code = region id)
  kMarker,         ///< tool marker (config sync, breakpoints...)
};

std::string_view to_string(EventKind kind);

struct Event {
  sim::TimeNs time = 0;
  std::int32_t pid = 0;  ///< MPI rank / process id
  std::int32_t tid = 0;  ///< thread id within the process
  EventKind kind = EventKind::kMarker;
  std::int32_t code = 0;
  std::int64_t aux = 0;
};

/// Strict weak order for merging per-process streams: by time, then pid,
/// then tid (deterministic).
struct EventOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (a.pid != b.pid) return a.pid < b.pid;
    return a.tid < b.tid;
  }
};

}  // namespace dyntrace::vt
