// Instrumentation snippets: the code fragments a dynamic instrumenter
// inserts at probe points (Figure 1 of the paper).
//
// A snippet is a small immutable AST.  Leaves either call into an
// instrumentation library ("VT_begin", "MPI_Barrier", ...), touch process
// memory (flags used for spin waits), or send a callback message to the
// instrumenter (DPCL_callback).  The initialization snippet of Figure 6 is
//     seq({ call("MPI_Barrier"), callback("init-done"),
//           spin_until("dynvt_spin", 0), call("MPI_Barrier") })
//
// Execution semantics live in the proc layer (snippets can block, so
// evaluation is a coroutine); this module only defines structure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace dyntrace::image {

class Snippet;
using SnippetPtr = std::shared_ptr<const Snippet>;

/// Do nothing (useful as a placeholder in tests).
struct NoOp {};

/// Call an instrumentation-library entry point with integer arguments.
struct CallLibOp {
  std::string function;
  std::vector<std::int64_t> args;
};

/// Execute children in order.
struct SequenceOp {
  std::vector<SnippetPtr> items;
};

/// Store `value` to a named flag in process memory.
struct SetFlagOp {
  std::string flag;
  std::int64_t value = 0;
};

/// Spin until the named flag equals `value` (DYNVT_spin of Figure 6).
struct SpinUntilOp {
  std::string flag;
  std::int64_t value = 0;
};

/// Send an asynchronous message to the attached instrumenter
/// (DPCL_callback of Figure 6).
struct CallbackOp {
  std::string tag;
};

class Snippet {
 public:
  using Node = std::variant<NoOp, CallLibOp, SequenceOp, SetFlagOp, SpinUntilOp, CallbackOp>;

  explicit Snippet(Node node) : node_(std::move(node)) {}

  const Node& node() const { return node_; }

  /// Number of primitive (leaf) operations; a proxy for snippet size used
  /// when charging patch time per probe.
  int primitive_count() const;

  /// Debug/trace rendering, e.g. "seq(call VT_begin(7), set dynvt_spin=1)".
  std::string to_string() const;

 private:
  Node node_;
};

/// Builders.
namespace snippet {

SnippetPtr noop();
SnippetPtr call(std::string function, std::vector<std::int64_t> args = {});
SnippetPtr seq(std::vector<SnippetPtr> items);
SnippetPtr set_flag(std::string flag, std::int64_t value);
SnippetPtr spin_until(std::string flag, std::int64_t value);
SnippetPtr callback(std::string tag);

}  // namespace snippet

}  // namespace dyntrace::image
