#include "image/symbols.hpp"

#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::image {

FunctionId SymbolTable::add(std::string name, std::string module) {
  DT_EXPECT(!name.empty(), "function name cannot be empty");
  DT_EXPECT(by_name_.find(name) == by_name_.end(), "duplicate function name '", name, "'");
  const auto id = static_cast<FunctionId>(functions_.size());
  by_name_.emplace(name, id);
  functions_.push_back(FunctionInfo{id, std::move(name), std::move(module)});
  return id;
}

const FunctionInfo* SymbolTable::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : &functions_[it->second];
}

const FunctionInfo& SymbolTable::at(FunctionId id) const {
  DT_ASSERT(id < functions_.size(), "function id ", id, " out of range");
  return functions_[id];
}

std::vector<FunctionId> SymbolTable::match(std::string_view glob) const {
  std::vector<FunctionId> out;
  for (const auto& f : functions_) {
    if (str::glob_match(glob, f.name)) out.push_back(f.id);
  }
  return out;
}

}  // namespace dyntrace::image
