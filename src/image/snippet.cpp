#include "image/snippet.hpp"

#include <sstream>

namespace dyntrace::image {

namespace {

struct CountVisitor {
  int operator()(const NoOp&) const { return 0; }
  int operator()(const CallLibOp&) const { return 1; }
  int operator()(const SetFlagOp&) const { return 1; }
  int operator()(const SpinUntilOp&) const { return 1; }
  int operator()(const CallbackOp&) const { return 1; }
  int operator()(const SequenceOp& s) const {
    int total = 0;
    for (const auto& item : s.items) total += item->primitive_count();
    return total;
  }
};

struct PrintVisitor {
  std::ostringstream& os;
  void operator()(const NoOp&) const { os << "noop"; }
  void operator()(const CallLibOp& c) const {
    os << "call " << c.function << '(';
    for (std::size_t i = 0; i < c.args.size(); ++i) {
      if (i) os << ", ";
      os << c.args[i];
    }
    os << ')';
  }
  void operator()(const SetFlagOp& s) const { os << "set " << s.flag << '=' << s.value; }
  void operator()(const SpinUntilOp& s) const { os << "spin_until " << s.flag << "==" << s.value; }
  void operator()(const CallbackOp& c) const { os << "callback '" << c.tag << "'"; }
  void operator()(const SequenceOp& s) const {
    os << "seq(";
    for (std::size_t i = 0; i < s.items.size(); ++i) {
      if (i) os << ", ";
      os << s.items[i]->to_string();
    }
    os << ')';
  }
};

}  // namespace

int Snippet::primitive_count() const { return std::visit(CountVisitor{}, node_); }

std::string Snippet::to_string() const {
  std::ostringstream os;
  std::visit(PrintVisitor{os}, node_);
  return os.str();
}

namespace snippet {

SnippetPtr noop() { return std::make_shared<const Snippet>(Snippet::Node{NoOp{}}); }

SnippetPtr call(std::string function, std::vector<std::int64_t> args) {
  return std::make_shared<const Snippet>(
      Snippet::Node{CallLibOp{std::move(function), std::move(args)}});
}

SnippetPtr seq(std::vector<SnippetPtr> items) {
  return std::make_shared<const Snippet>(Snippet::Node{SequenceOp{std::move(items)}});
}

SnippetPtr set_flag(std::string flag, std::int64_t value) {
  return std::make_shared<const Snippet>(Snippet::Node{SetFlagOp{std::move(flag), value}});
}

SnippetPtr spin_until(std::string flag, std::int64_t value) {
  return std::make_shared<const Snippet>(Snippet::Node{SpinUntilOp{std::move(flag), value}});
}

SnippetPtr callback(std::string tag) {
  return std::make_shared<const Snippet>(Snippet::Node{CallbackOp{std::move(tag)}});
}

}  // namespace snippet

}  // namespace dyntrace::image
