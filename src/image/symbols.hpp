// Symbol table of a simulated program image.
//
// Functions are the instrumentation granularity of the paper (subroutine
// entry/exit probes), so the symbol table is a flat function list with
// name lookup and glob matching (used by insert-file command files).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dyntrace::image {

using FunctionId = std::uint32_t;
inline constexpr FunctionId kInvalidFunction = 0xffffffffu;

struct FunctionInfo {
  FunctionId id = kInvalidFunction;
  std::string name;
  std::string module;  ///< source file / library the function lives in
};

class SymbolTable {
 public:
  /// Add a function; names must be unique.  Returns the new id (dense,
  /// starting at 0).
  FunctionId add(std::string name, std::string module = "");

  const FunctionInfo* find(std::string_view name) const;
  const FunctionInfo& at(FunctionId id) const;
  bool contains(std::string_view name) const { return find(name) != nullptr; }

  std::size_t size() const { return functions_.size(); }
  const std::vector<FunctionInfo>& all() const { return functions_; }

  /// Ids of all functions whose name matches the glob pattern, in id order.
  std::vector<FunctionId> match(std::string_view glob) const;

 private:
  std::vector<FunctionInfo> functions_;
  std::unordered_map<std::string, FunctionId> by_name_;
};

}  // namespace dyntrace::image
