// The mutable program image: static instrumentation marks plus the dynamic
// patching state (base trampolines and mini-trampoline chains) per probe
// point.
//
// MPI applications: every process owns a *copy* of the template image (one
// address space each), so dynprof must patch P images.  OpenMP
// applications: all threads share a single image (why Figure 9 is flat for
// Umt98).  ProgramImage is a value type to make both models trivial.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "image/snippet.hpp"
#include "image/symbols.hpp"
#include "machine/spec.hpp"
#include "sim/time.hpp"

namespace dyntrace::image {

enum class ProbeWhere : std::uint8_t { kEntry = 0, kExit = 1 };

const char* to_string(ProbeWhere where);

/// Identifies one installed mini-trampoline within one image.
struct ProbeHandle {
  std::uint64_t value = 0;  ///< 0 = invalid
  explicit operator bool() const { return value != 0; }
  friend bool operator==(ProbeHandle a, ProbeHandle b) { return a.value == b.value; }
};

struct InstalledProbe {
  ProbeHandle handle;
  SnippetPtr snippet;
  bool active = true;
};

/// One probe point (a function entry or exit).  The base trampoline exists
/// while any mini-trampoline is installed, active or not.
struct ProbePoint {
  std::vector<InstalledProbe> minis;
  bool has_base_trampoline() const { return !minis.empty(); }
};

class ProgramImage {
 public:
  explicit ProgramImage(std::shared_ptr<const SymbolTable> symbols);

  const SymbolTable& symbols() const { return *symbols_; }
  std::shared_ptr<const SymbolTable> symbols_ptr() const { return symbols_; }

  // --- static instrumentation (written by the Guide compiler) -------------

  /// Mark a function as carrying compiled-in VT_begin/VT_end calls.
  void set_static_instrumented(FunctionId fn, bool on);
  bool static_instrumented(FunctionId fn) const;
  std::size_t static_instrumented_count() const;

  // --- dynamic patching (performed by DPCL daemons) ------------------------

  /// Install a mini-trampoline at a probe point.  Creates the base
  /// trampoline on first install.  Returns a handle unique within this
  /// image.
  ProbeHandle install_probe(FunctionId fn, ProbeWhere where, SnippetPtr snippet,
                            bool active = true);

  /// Remove a mini-trampoline.  Returns false if the handle is unknown
  /// (e.g. already removed).
  bool remove_probe(ProbeHandle handle);

  /// Activate / deactivate without removing.  Returns false if unknown.
  bool set_probe_active(ProbeHandle handle, bool active);

  const ProbePoint& probe_point(FunctionId fn, ProbeWhere where) const;

  /// Snippets to execute at a probe point, in install order (active only).
  std::vector<SnippetPtr> active_snippets(FunctionId fn, ProbeWhere where) const;

  /// Structural trampoline cost of passing this probe point (jump, register
  /// save/restore, relocated instruction, one chain dispatch per active
  /// mini) -- excludes the cost of snippet bodies, which is charged by the
  /// library functions they call.  Zero when no base trampoline exists:
  /// an unpatched probe point is free, the paper's central premise.
  sim::TimeNs trampoline_overhead(FunctionId fn, ProbeWhere where,
                                  const machine::CostModel& costs) const;

  // --- accounting -----------------------------------------------------------

  /// Total installed mini-trampolines (active + inactive).
  std::size_t installed_probe_count() const;
  std::size_t active_probe_count() const;

  /// Bumped on every successful mutation; lets callers detect patching.
  std::uint64_t patch_epoch() const { return patch_epoch_; }

 private:
  struct FunctionPatchState {
    bool static_instrumented = false;
    ProbePoint points[2];  // indexed by ProbeWhere
  };

  ProbePoint& point(FunctionId fn, ProbeWhere where);
  const ProbePoint& point(FunctionId fn, ProbeWhere where) const;
  InstalledProbe* find_probe(ProbeHandle handle, FunctionId* fn_out, ProbeWhere* where_out);

  std::shared_ptr<const SymbolTable> symbols_;
  std::vector<FunctionPatchState> state_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t patch_epoch_ = 0;
};

}  // namespace dyntrace::image
