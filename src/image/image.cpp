#include "image/image.hpp"

#include "support/common.hpp"

namespace dyntrace::image {

const char* to_string(ProbeWhere where) {
  return where == ProbeWhere::kEntry ? "entry" : "exit";
}

ProgramImage::ProgramImage(std::shared_ptr<const SymbolTable> symbols)
    : symbols_(std::move(symbols)) {
  DT_ASSERT(symbols_ != nullptr);
  state_.resize(symbols_->size());
}

void ProgramImage::set_static_instrumented(FunctionId fn, bool on) {
  DT_ASSERT(fn < state_.size());
  state_[fn].static_instrumented = on;
}

bool ProgramImage::static_instrumented(FunctionId fn) const {
  DT_ASSERT(fn < state_.size());
  return state_[fn].static_instrumented;
}

std::size_t ProgramImage::static_instrumented_count() const {
  std::size_t n = 0;
  for (const auto& s : state_) n += s.static_instrumented ? 1 : 0;
  return n;
}

ProbePoint& ProgramImage::point(FunctionId fn, ProbeWhere where) {
  DT_ASSERT(fn < state_.size(), "function id out of range");
  return state_[fn].points[static_cast<int>(where)];
}

const ProbePoint& ProgramImage::point(FunctionId fn, ProbeWhere where) const {
  DT_ASSERT(fn < state_.size(), "function id out of range");
  return state_[fn].points[static_cast<int>(where)];
}

ProbeHandle ProgramImage::install_probe(FunctionId fn, ProbeWhere where, SnippetPtr snippet,
                                        bool active) {
  DT_ASSERT(snippet != nullptr, "cannot install a null snippet");
  ProbePoint& p = point(fn, where);
  const ProbeHandle handle{next_handle_++};
  p.minis.push_back(InstalledProbe{handle, std::move(snippet), active});
  ++patch_epoch_;
  return handle;
}

InstalledProbe* ProgramImage::find_probe(ProbeHandle handle, FunctionId* fn_out,
                                         ProbeWhere* where_out) {
  for (FunctionId fn = 0; fn < state_.size(); ++fn) {
    for (int w = 0; w < 2; ++w) {
      for (auto& probe : state_[fn].points[w].minis) {
        if (probe.handle == handle) {
          if (fn_out) *fn_out = fn;
          if (where_out) *where_out = static_cast<ProbeWhere>(w);
          return &probe;
        }
      }
    }
  }
  return nullptr;
}

bool ProgramImage::remove_probe(ProbeHandle handle) {
  FunctionId fn = kInvalidFunction;
  ProbeWhere where = ProbeWhere::kEntry;
  if (find_probe(handle, &fn, &where) == nullptr) return false;
  auto& minis = point(fn, where).minis;
  for (auto it = minis.begin(); it != minis.end(); ++it) {
    if (it->handle == handle) {
      minis.erase(it);
      ++patch_epoch_;
      return true;
    }
  }
  return false;
}

bool ProgramImage::set_probe_active(ProbeHandle handle, bool active) {
  InstalledProbe* probe = find_probe(handle, nullptr, nullptr);
  if (probe == nullptr) return false;
  if (probe->active != active) {
    probe->active = active;
    ++patch_epoch_;
  }
  return true;
}

const ProbePoint& ProgramImage::probe_point(FunctionId fn, ProbeWhere where) const {
  return point(fn, where);
}

std::vector<SnippetPtr> ProgramImage::active_snippets(FunctionId fn, ProbeWhere where) const {
  std::vector<SnippetPtr> out;
  for (const auto& probe : point(fn, where).minis) {
    if (probe.active) out.push_back(probe.snippet);
  }
  return out;
}

sim::TimeNs ProgramImage::trampoline_overhead(FunctionId fn, ProbeWhere where,
                                              const machine::CostModel& costs) const {
  const ProbePoint& p = point(fn, where);
  if (!p.has_base_trampoline()) return 0;
  sim::TimeNs total = costs.tramp_jump + costs.tramp_save_regs + costs.tramp_restore_regs +
                      costs.tramp_relocated_insn;
  for (const auto& probe : p.minis) {
    if (probe.active) total += costs.tramp_mini_dispatch;
  }
  return total;
}

std::size_t ProgramImage::installed_probe_count() const {
  std::size_t n = 0;
  for (const auto& s : state_) {
    n += s.points[0].minis.size() + s.points[1].minis.size();
  }
  return n;
}

std::size_t ProgramImage::active_probe_count() const {
  std::size_t n = 0;
  for (const auto& s : state_) {
    for (const auto& p : s.points) {
      for (const auto& probe : p.minis) n += probe.active ? 1 : 0;
    }
  }
  return n;
}

}  // namespace dyntrace::image
