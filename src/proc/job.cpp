#include "proc/job.hpp"

#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::proc {

ParallelJob::ParallelJob(machine::Cluster& cluster, std::string name)
    : cluster_(cluster), name_(std::move(name)), all_done_(cluster.engine()) {}

SimProcess& ParallelJob::add_process(image::ProgramImage img, int node, int cpu) {
  DT_ASSERT(!started_, "cannot add processes to a started job");
  const int pid = static_cast<int>(processes_.size());
  processes_.push_back(std::make_unique<SimProcess>(cluster_, pid, node, cpu, std::move(img)));
  mains_.emplace_back();
  return *processes_.back();
}

void ParallelJob::set_main(int pid, MainFn main) {
  DT_ASSERT(pid >= 0 && static_cast<std::size_t>(pid) < mains_.size());
  mains_[static_cast<std::size_t>(pid)] = std::move(main);
}

SimProcess& ParallelJob::process(int pid) {
  DT_ASSERT(pid >= 0 && static_cast<std::size_t>(pid) < processes_.size(), "pid ", pid,
            " out of range");
  return *processes_[static_cast<std::size_t>(pid)];
}

sim::Coro<void> ParallelJob::run_process(SimProcess& process, MainFn main) {
  co_await main(process.main_thread());
  process.mark_terminated();
  if (++finished_ == processes_.size()) {
    finish_time_ = cluster_.engine().now();
    all_done_.fire();
  }
}

void ParallelJob::start() {
  DT_ASSERT(!started_, "job already started");
  DT_EXPECT(!processes_.empty(), "job '", name_, "' has no processes");
  for (std::size_t pid = 0; pid < processes_.size(); ++pid) {
    DT_EXPECT(mains_[pid] != nullptr, "job '", name_, "': process ", pid, " has no main");
  }
  started_ = true;
  start_time_ = cluster_.engine().now();
  for (std::size_t pid = 0; pid < processes_.size(); ++pid) {
    cluster_.engine().spawn(run_process(*processes_[pid], mains_[pid]),
                            str::format("%s.rank%zu", name_.c_str(), pid));
  }
}

}  // namespace dyntrace::proc
