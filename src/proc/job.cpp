#include "proc/job.hpp"

#include <algorithm>

#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::proc {

ParallelJob::ParallelJob(machine::Cluster& cluster, std::string name)
    : cluster_(cluster), name_(std::move(name)), all_done_(cluster.engine()) {}

SimProcess& ParallelJob::add_process(image::ProgramImage img, int node, int cpu) {
  DT_ASSERT(!started_, "cannot add processes to a started job");
  const int pid = static_cast<int>(processes_.size());
  processes_.push_back(std::make_unique<SimProcess>(cluster_, pid, node, cpu, std::move(img)));
  mains_.emplace_back();
  return *processes_.back();
}

void ParallelJob::set_main(int pid, MainFn main) {
  DT_ASSERT(pid >= 0 && static_cast<std::size_t>(pid) < mains_.size());
  mains_[static_cast<std::size_t>(pid)] = std::move(main);
}

SimProcess& ParallelJob::process(int pid) {
  DT_ASSERT(pid >= 0 && static_cast<std::size_t>(pid) < processes_.size(), "pid ", pid,
            " out of range");
  return *processes_[static_cast<std::size_t>(pid)];
}

sim::Coro<void> ParallelJob::run_process(SimProcess& process, MainFn main) {
  co_await main(process.main_thread());
  process.mark_terminated();
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(finish_mutex_);
    finish_time_ = std::max(finish_time_, process.engine().now());
    last = ++finished_ == processes_.size();
  }
  // Firing from a foreign shard is safe only because nothing awaits
  // all_done() mid-run (Engine::post would assert if it did); observers
  // poll fired() or read finish_time() after the run.
  if (last) all_done_.fire();
}

void ParallelJob::start(SimThread* origin) {
  DT_ASSERT(!started_, "job already started");
  DT_EXPECT(!processes_.empty(), "job '", name_, "' has no processes");
  for (std::size_t pid = 0; pid < processes_.size(); ++pid) {
    DT_EXPECT(mains_[pid] != nullptr, "job '", name_, "': process ", pid, " has no main");
  }
  started_ = true;
  sim::Engine& origin_engine = origin != nullptr ? origin->engine() : cluster_.engine();
  const int origin_node = origin != nullptr ? origin->process().node() : -1;
  start_time_ = origin_engine.now();
  for (std::size_t pid = 0; pid < processes_.size(); ++pid) {
    SimProcess& proc = *processes_[pid];
    if (origin != nullptr && proc.node() != origin_node) {
      // POE fan-out: one zero-byte control message from the submitting node
      // starts each remote process.
      const sim::TimeNs delay =
          cluster_.message_delay(origin_node, proc.node(), 0, start_time_);
      proc.engine().deliver_at(start_time_ + delay, [this, pid] {
        SimProcess& p = *processes_[pid];
        p.engine().spawn(run_process(p, mains_[pid]),
                         str::format("%s.rank%zu", name_.c_str(), pid));
      });
    } else {
      proc.engine().spawn(run_process(proc, mains_[pid]),
                          str::format("%s.rank%zu", name_.c_str(), pid));
    }
  }
}

}  // namespace dyntrace::proc
