#include "proc/process.hpp"

#include "support/common.hpp"
#include "support/log.hpp"

namespace dyntrace::proc {

// ---------------------------------------------------------------------------
// LibraryRegistry
// ---------------------------------------------------------------------------

void LibraryRegistry::register_function(std::string name, LibFunction fn) {
  DT_ASSERT(fn != nullptr);
  functions_[std::move(name)] = std::move(fn);
}

const LibraryRegistry::LibFunction* LibraryRegistry::find(const std::string& name) const {
  const auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// SimThread
// ---------------------------------------------------------------------------

SimThread::SimThread(SimProcess& process, int tid, int cpu)
    : process_(process), tid_(tid), cpu_(cpu) {}

sim::Engine& SimThread::engine() { return process_.engine(); }

// Awaitable for one interruptible timer wait.  await_resume returns the
// CPU time actually consumed (== requested unless the process was
// suspended mid-wait).
struct SimThread::InterruptibleSleep {
  SimThread& thread;
  sim::TimeNs duration;

  bool await_ready() const noexcept { return duration <= 0; }

  void await_suspend(std::coroutine_handle<> h) {
    sim::Engine& eng = thread.engine();
    DT_ASSERT(!thread.sleep_.has_value(), "thread already sleeping");
    thread.sleep_.emplace();
    SleepState& st = *thread.sleep_;
    st.handle = h;
    st.started = eng.now();
    st.timer = eng.schedule_after(duration, [t = &thread] {
      DT_ASSERT(t->sleep_.has_value());
      t->sleep_->consumed = t->engine().now() - t->sleep_->started;
      t->sleep_->handle.resume();
    });
  }

  sim::TimeNs await_resume() const noexcept {
    if (!thread.sleep_.has_value()) return duration;  // await_ready fast path
    const sim::TimeNs consumed = thread.sleep_->interrupted ? thread.sleep_->consumed : duration;
    thread.sleep_.reset();
    return consumed;
  }
};

sim::Coro<void> SimThread::compute(sim::TimeNs work) {
  DT_ASSERT(work >= 0, "negative work");
  sim::TimeNs remaining = work;
  while (true) {
    if (process_.suspended()) {
      co_await process_.resumed_.wait();
      continue;
    }
    if (remaining <= 0) break;
    const sim::TimeNs consumed = co_await InterruptibleSleep{*this, remaining};
    remaining -= consumed;
  }
}

sim::Coro<void> SimThread::gate() {
  while (process_.suspended()) {
    co_await process_.resumed_.wait();
  }
}

sim::Coro<void> SimThread::call_function(image::FunctionId fn, const BodyFn& body) {
  image::ProgramImage& img = process_.image();
  const machine::CostModel& costs = process_.cluster().spec().costs;
  ++function_entries_;
  ++call_depth_;
  fn_stack_.push_back(fn);

  // Dynamic entry probes (trampoline first, then the mini-trampoline
  // snippets in install order).
  const sim::TimeNs entry_tramp =
      img.trampoline_overhead(fn, image::ProbeWhere::kEntry, costs);
  if (entry_tramp > 0) {
    co_await compute(entry_tramp);
    for (const auto& sn : img.active_snippets(fn, image::ProbeWhere::kEntry)) {
      co_await exec_snippet(*sn);
    }
  }

  // Static instrumentation compiled in by the Guide compiler.
  const bool is_static = img.static_instrumented(fn);
  std::vector<std::int64_t> fn_arg(1, static_cast<std::int64_t>(fn));
  if (is_static) co_await lib_call("VT_begin", fn_arg);

  if (body) co_await body(*this);

  if (is_static) co_await lib_call("VT_end", fn_arg);

  const sim::TimeNs exit_tramp = img.trampoline_overhead(fn, image::ProbeWhere::kExit, costs);
  if (exit_tramp > 0) {
    co_await compute(exit_tramp);
    for (const auto& sn : img.active_snippets(fn, image::ProbeWhere::kExit)) {
      co_await exec_snippet(*sn);
    }
  }
  --call_depth_;
  DT_ASSERT(!fn_stack_.empty() && fn_stack_.back() == fn, "function stack corrupted");
  fn_stack_.pop_back();
}

sim::Coro<void> SimThread::exec_snippet(const image::Snippet& snippet) {
  const auto& node = snippet.node();
  if (const auto* seq = std::get_if<image::SequenceOp>(&node)) {
    for (const auto& item : seq->items) co_await exec_snippet(*item);
  } else if (const auto* c = std::get_if<image::CallLibOp>(&node)) {
    co_await lib_call(c->function, c->args);
  } else if (const auto* f = std::get_if<image::SetFlagOp>(&node)) {
    process_.set_flag(f->flag, f->value);
  } else if (const auto* spin = std::get_if<image::SpinUntilOp>(&node)) {
    co_await process_.wait_flag(spin->flag, spin->value);
    co_await gate();
  } else if (const auto* cb = std::get_if<image::CallbackOp>(&node)) {
    process_.send_callback(cb->tag);
  }
  // NoOp: nothing.
}

sim::Coro<void> SimThread::lib_call(const std::string& name, std::vector<std::int64_t> args) {
  const auto* fn = process_.registry().find(name);
  DT_EXPECT(fn != nullptr, "process ", process_.pid(), ": unresolved library function '", name,
            "' (not linked)");
  co_await (*fn)(*this, args);
}

// ---------------------------------------------------------------------------
// SimProcess
// ---------------------------------------------------------------------------

SimProcess::SimProcess(machine::Cluster& cluster, int pid, int node, int first_cpu,
                       image::ProgramImage img)
    : cluster_(cluster),
      pid_(pid),
      node_(node),
      engine_(cluster.engine_for(node, first_cpu)),
      first_cpu_(first_cpu),
      image_(std::move(img)),
      resumed_(engine_),
      terminated_(engine_) {
  DT_EXPECT(node >= 0 && node < cluster.spec().nodes, "node ", node, " out of range for ",
            cluster.spec().name);
  threads_.push_back(std::make_unique<SimThread>(*this, 0, first_cpu));
}

SimThread& SimProcess::add_thread(int cpu) {
  const int tid = static_cast<int>(threads_.size());
  threads_.push_back(std::make_unique<SimThread>(*this, tid, cpu));
  return *threads_.back();
}

void SimProcess::suspend() {
  if (suspended_) return;
  suspended_ = true;
  ++suspend_count_;
  const sim::TimeNs now = engine().now();
  for (auto& thread : threads_) {
    if (thread->sleep_.has_value() && !thread->sleep_->interrupted) {
      SimThread::SleepState& st = *thread->sleep_;
      engine().cancel(st.timer);
      st.interrupted = true;
      st.consumed = now - st.started;
      // The coroutine stays parked; resume() reposts it.
    }
  }
}

void SimProcess::resume() {
  if (!suspended_) return;
  suspended_ = false;
  for (auto& thread : threads_) {
    if (thread->sleep_.has_value() && thread->sleep_->interrupted) {
      engine().post(thread->sleep_->handle);
    }
  }
  resumed_.notify_all();
}

std::int64_t SimProcess::flag(const std::string& name) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? 0 : it->second;
}

void SimProcess::set_flag(const std::string& name, std::int64_t value) {
  flags_[name] = value;
  const auto it = flag_waiters_.find(name);
  if (it != flag_waiters_.end()) it->second->notify_all();
}

sim::Coro<void> SimProcess::wait_flag(const std::string& name, std::int64_t value) {
  while (flag(name) != value) {
    auto it = flag_waiters_.find(name);
    if (it == flag_waiters_.end()) {
      it = flag_waiters_.emplace(name, std::make_unique<sim::Condition>(engine())).first;
    }
    co_await it->second->wait();
  }
}

void SimProcess::send_callback(const std::string& tag) {
  if (callback_sink_) {
    callback_sink_(tag, pid_);
  } else {
    log::warn("proc", "process ", pid_, ": callback '", tag, "' with no instrumenter attached");
  }
}

}  // namespace dyntrace::proc
