// A parallel job: the set of processes started together by the POE-style
// launcher.
//
// Mirrors the paper's tool model: the job is *created* with every process
// suspended at its first instruction (nothing scheduled yet), the
// instrumenter may patch images, and only then is the job start()ed.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "proc/process.hpp"

namespace dyntrace::proc {

class ParallelJob {
 public:
  using MainFn = SimThread::BodyFn;

  ParallelJob(machine::Cluster& cluster, std::string name);
  ParallelJob(const ParallelJob&) = delete;
  ParallelJob& operator=(const ParallelJob&) = delete;

  const std::string& name() const { return name_; }
  machine::Cluster& cluster() { return cluster_; }

  /// Add a process (pid = insertion index) placed on `node`, main thread on
  /// `cpu`.  Must be called before start().
  SimProcess& add_process(image::ProgramImage img, int node, int cpu);

  /// Set the entry point of a process's main thread.
  void set_main(int pid, MainFn main);

  /// Begin execution of every process.  Pre-run (origin == nullptr) every
  /// main starts at the current time on its process's home engine.  Started
  /// mid-run from a simulated thread (the tool issuing the POE launch),
  /// pass that thread as `origin`: starting a process on a *different* node
  /// costs one zero-byte control message from the origin node -- the POE
  /// fan-out -- which also keeps cross-shard starts beyond the conservative
  /// lookahead.  The fan-out is applied identically in single-shard runs,
  /// so sequential and parallel timings agree bit for bit.
  void start(SimThread* origin = nullptr);
  bool started() const { return started_; }

  SimProcess& process(int pid);
  std::size_t size() const { return processes_.size(); }
  const std::vector<std::unique_ptr<SimProcess>>& processes() const { return processes_; }

  /// Fires when every process's main returns.
  sim::Trigger& all_done() { return all_done_; }

  /// Simulation time at which the last process finished (valid once
  /// all_done() has fired).
  sim::TimeNs finish_time() const { return finish_time_; }
  sim::TimeNs start_time() const { return start_time_; }

 private:
  sim::Coro<void> run_process(SimProcess& process, MainFn main);

  machine::Cluster& cluster_;
  std::string name_;
  std::vector<std::unique_ptr<SimProcess>> processes_;
  std::vector<MainFn> mains_;
  bool started_ = false;
  // Finish bookkeeping is updated from each process's home shard; the mutex
  // covers concurrent finishes inside one window (the values themselves are
  // deterministic: count and max-time are order-independent).
  std::mutex finish_mutex_;
  std::size_t finished_ = 0;
  sim::TimeNs start_time_ = 0;
  sim::TimeNs finish_time_ = 0;
  sim::Trigger all_done_;
};

}  // namespace dyntrace::proc
