// Simulated OS processes and threads.
//
// A SimProcess models one address space: a ProgramImage (its patchable
// code), named memory words ("flags", used by spin-wait snippets), a
// registry of instrumentation-library entry points, and one or more
// SimThreads.  A SimThread executes workload code written as coroutines and
// provides the function-call protocol that fires static instrumentation and
// dynamic probes.
//
// Process control mirrors ptrace/DPCL semantics: suspend() freezes all
// threads (a thread mid-computation stops immediately and keeps its
// remaining work; a blocked thread parks at its next scheduling point),
// resume() lets them continue.  Patching a suspended process is how DPCL
// guarantees a consistent image.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "image/image.hpp"
#include "machine/cluster.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace dyntrace::proc {

class SimProcess;
class SimThread;

/// Instrumentation-library entry points callable from snippets and from
/// statically instrumented code.  Libraries (VT, the MPI wrappers, the
/// OpenMP runtime) register their functions per process at "link time".
class LibraryRegistry {
 public:
  using LibFunction =
      std::function<sim::Coro<void>(SimThread&, const std::vector<std::int64_t>&)>;

  /// Register (or replace) an entry point.
  void register_function(std::string name, LibFunction fn);
  const LibFunction* find(const std::string& name) const;
  std::size_t size() const { return functions_.size(); }

 private:
  std::map<std::string, LibFunction> functions_;
};

class SimThread {
 public:
  using BodyFn = std::function<sim::Coro<void>(SimThread&)>;

  SimThread(SimProcess& process, int tid, int cpu);
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  SimProcess& process() { return process_; }
  const SimProcess& process() const { return process_; }
  int tid() const { return tid_; }
  int cpu() const { return cpu_; }
  sim::Engine& engine();

  /// Burn `work` nanoseconds of CPU.  Interruptible: if the process is
  /// suspended mid-compute, the thread freezes with the remaining work
  /// intact and continues after resume().
  sim::Coro<void> compute(sim::TimeNs work);

  /// Park here while the process is suspended; returns immediately
  /// otherwise.  Blocking operations (message receives etc.) call this
  /// after waking so a suspended process makes no progress.
  sim::Coro<void> gate();

  /// Execute a workload function: dynamic entry probes, static VT_begin
  /// (if the Guide compiler instrumented this function), the body, static
  /// VT_end, dynamic exit probes.
  sim::Coro<void> call_function(image::FunctionId fn, const BodyFn& body);

  /// Execute an instrumentation snippet (may block: spin waits).
  sim::Coro<void> exec_snippet(const image::Snippet& snippet);

  /// Call a registered library function by name.
  sim::Coro<void> lib_call(const std::string& name, std::vector<std::int64_t> args = {});

  /// Current workload-function nesting depth (0 outside any function).
  int call_depth() const { return call_depth_; }

  /// Innermost workload function currently executing, or kInvalidFunction
  /// outside any call -- what a statistical sampler's interrupt handler
  /// would read from the program counter.
  image::FunctionId current_function() const {
    return fn_stack_.empty() ? image::kInvalidFunction : fn_stack_.back();
  }

  /// Number of times this thread entered any workload function.
  std::uint64_t function_entries() const { return function_entries_; }

 private:
  friend class SimProcess;

  struct SleepState {
    sim::EventId timer;
    std::coroutine_handle<> handle;
    sim::TimeNs started = 0;
    sim::TimeNs consumed = 0;  ///< set when interrupted
    bool interrupted = false;
  };

  // Awaitable used by compute(); registered with the thread so suspend()
  // can cancel the timer.
  struct InterruptibleSleep;

  SimProcess& process_;
  int tid_;
  int cpu_;
  int call_depth_ = 0;
  std::vector<image::FunctionId> fn_stack_;
  std::uint64_t function_entries_ = 0;
  std::optional<SleepState> sleep_;
};

class SimProcess {
 public:
  using CallbackSink = std::function<void(const std::string& tag, int pid)>;

  /// Creates the process with one initial thread (tid 0) on `first_cpu`.
  SimProcess(machine::Cluster& cluster, int pid, int node, int first_cpu,
             image::ProgramImage img);
  SimProcess(const SimProcess&) = delete;
  SimProcess& operator=(const SimProcess&) = delete;

  machine::Cluster& cluster() { return cluster_; }
  const machine::Cluster& cluster() const { return cluster_; }
  /// The process's home engine: the shard owning its node.  Every event the
  /// process schedules executes there.
  sim::Engine& engine() { return engine_; }
  int pid() const { return pid_; }
  int node() const { return node_; }

  image::ProgramImage& image() { return image_; }
  const image::ProgramImage& image() const { return image_; }
  LibraryRegistry& registry() { return registry_; }

  // --- threads --------------------------------------------------------------

  SimThread& main_thread() { return *threads_.front(); }
  SimThread& add_thread(int cpu);
  const std::vector<std::unique_ptr<SimThread>>& threads() const { return threads_; }

  // --- process control (ptrace / DPCL suspend) ------------------------------

  bool suspended() const { return suspended_; }
  void suspend();
  void resume();
  sim::Condition& resumed_condition() { return resumed_; }
  std::uint64_t suspend_count() const { return suspend_count_; }

  // --- named memory words ----------------------------------------------------

  std::int64_t flag(const std::string& name) const;
  void set_flag(const std::string& name, std::int64_t value);
  /// Block until the flag equals `value` (level-triggered).
  sim::Coro<void> wait_flag(const std::string& name, std::int64_t value);

  // --- instrumenter callback channel -----------------------------------------

  void set_callback_sink(CallbackSink sink) { callback_sink_ = std::move(sink); }
  /// Invoked by CallbackOp snippets; no-op (with a warning) if unattached.
  void send_callback(const std::string& tag);

  // --- lifecycle --------------------------------------------------------------

  sim::Trigger& terminated() { return terminated_; }
  void mark_terminated() { terminated_.fire(); }

  /// Lost to a fault: the control plane abandoned this process (its node's
  /// daemon died or it was killed by a fault plan).  Orthogonal to
  /// terminated(): a lost process may still be running app code, but no
  /// instrumentation request will reach it again.
  bool lost() const { return lost_; }
  void mark_lost() { lost_ = true; }

 private:
  friend class SimThread;

  machine::Cluster& cluster_;
  int pid_;
  int node_;
  sim::Engine& engine_;  ///< home shard; declared before the sync members below
  int first_cpu_;
  image::ProgramImage image_;
  LibraryRegistry registry_;
  std::vector<std::unique_ptr<SimThread>> threads_;

  bool suspended_ = false;
  std::uint64_t suspend_count_ = 0;
  sim::Condition resumed_;

  std::map<std::string, std::int64_t> flags_;
  std::map<std::string, std::unique_ptr<sim::Condition>> flag_waiters_;

  CallbackSink callback_sink_;
  sim::Trigger terminated_;
  bool lost_ = false;
};

}  // namespace dyntrace::proc
