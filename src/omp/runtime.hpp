// The simulated OpenMP runtime (the paper's Guide runtime library).
//
// The Guide compiler transforms OpenMP directives into calls to this
// runtime: parallel() forks a persistent team of SimThreads pinned to the
// node's CPUs, runs the region body on every team member, and joins at an
// implicit barrier.  for_each() implements worksharing with static,
// dynamic and guided schedules.  An OmpListener receives region/thread
// events -- this is the Guidetrace -> Vampirtrace event channel of VGV.
//
// All team threads share the process's single ProgramImage, which is the
// mechanism behind the paper's observation that dynamically instrumenting
// an OpenMP application costs O(1) rather than O(P) (Figure 9).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "proc/process.hpp"
#include "sim/sync.hpp"

namespace dyntrace::omp {

enum class Schedule : std::uint8_t { kStatic, kDynamic, kGuided };

/// Runtime events (consumed by the VT/Guidetrace glue).
class OmpListener {
 public:
  virtual ~OmpListener() = default;
  virtual sim::Coro<void> on_parallel_begin(proc::SimThread& master, int region_id,
                                            int num_threads) = 0;
  virtual sim::Coro<void> on_parallel_end(proc::SimThread& master, int region_id) = 0;
  virtual sim::Coro<void> on_worker_begin(proc::SimThread& worker, int region_id) = 0;
  virtual sim::Coro<void> on_worker_end(proc::SimThread& worker, int region_id) = 0;
};

class OmpRuntime {
 public:
  /// Region body: (thread, omp_get_thread_num, omp_get_num_threads).
  using RegionFn = std::function<sim::Coro<void>(proc::SimThread&, int, int)>;
  /// Loop body: (thread, iteration index).
  using IterFn = std::function<sim::Coro<void>(proc::SimThread&, std::int64_t)>;

  /// Creates the persistent team: num_threads-1 worker SimThreads pinned to
  /// consecutive CPUs after the master's.  Throws if the node is too small.
  OmpRuntime(proc::SimProcess& process, int num_threads);
  OmpRuntime(const OmpRuntime&) = delete;
  OmpRuntime& operator=(const OmpRuntime&) = delete;

  int num_threads() const { return num_threads_; }
  proc::SimProcess& process() { return process_; }

  void set_listener(OmpListener* listener) { listener_ = listener; }

  /// Fork/join a parallel region; `master` must be the process main thread
  /// (nested parallelism is not modelled, as in Guide's default).
  sim::Coro<void> parallel(proc::SimThread& master, RegionFn body);

  /// Worksharing loop inside a region: distributes [0, iterations) over the
  /// team.  Must be called by every team member with its own thread.
  /// Includes the implicit end-of-loop barrier (no nowait).
  sim::Coro<void> for_each(proc::SimThread& thread, int thread_num, std::int64_t iterations,
                           Schedule schedule, std::int64_t chunk, const IterFn& body);

  /// Explicit team barrier (also used for the loop-end implicit barrier).
  sim::Coro<void> barrier(proc::SimThread& thread);

  /// #pragma omp critical: run `body` under the team-wide lock.
  sim::Coro<void> critical(proc::SimThread& thread,
                           const std::function<sim::Coro<void>(proc::SimThread&)>& body);

  /// #pragma omp single: the first team member to arrive executes `body`;
  /// everyone synchronises at the implicit barrier afterwards.  Must be
  /// reached by all team members (like the loop constructs).
  sim::Coro<void> single(proc::SimThread& thread, int thread_num,
                         const std::function<sim::Coro<void>(proc::SimThread&)>& body);

  /// #pragma omp master: thread 0 executes `body`; no barrier.
  sim::Coro<void> master(proc::SimThread& thread, int thread_num,
                         const std::function<sim::Coro<void>(proc::SimThread&)>& body);

  int regions_executed() const { return next_region_id_; }

 private:
  struct LoopState {
    std::int64_t next = 0;       ///< next unclaimed iteration (dynamic/guided)
    std::int64_t remaining = 0;  ///< iterations not yet claimed
    int entered = 0;             ///< team members that have joined this loop
  };

  // Per-thread loop sequence numbers pair each thread's Nth loop with the
  // shared LoopState for that loop.
  LoopState& loop_state(int thread_num);

  proc::SimProcess& process_;
  int num_threads_;
  std::vector<proc::SimThread*> team_;  ///< [0] = master
  OmpListener* listener_ = nullptr;

  sim::SimBarrier team_barrier_;
  sim::Semaphore critical_lock_;

  int next_region_id_ = 0;
  bool in_region_ = false;

  std::uint64_t loop_seq_ = 0;                  ///< completed-loop counter
  std::vector<std::uint64_t> thread_loop_seq_;  ///< per-thread next loop number
  std::map<std::uint64_t, LoopState> loops_;

  std::vector<std::uint64_t> thread_single_seq_;  ///< per-thread next single number
  std::map<std::uint64_t, bool> singles_;         ///< single id -> already claimed
};

}  // namespace dyntrace::omp
