#include "omp/runtime.hpp"

#include <algorithm>
#include <bit>

#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::omp {

namespace {

// Guide-runtime software costs (modelled; see DESIGN.md §2).
constexpr sim::TimeNs kForkBase = sim::microseconds(3.0);
constexpr sim::TimeNs kForkPerThread = sim::microseconds(1.1);
constexpr sim::TimeNs kBarrierPerRound = sim::microseconds(0.6);
constexpr sim::TimeNs kStaticSchedCost = sim::microseconds(0.3);
constexpr sim::TimeNs kDynamicClaimCost = sim::microseconds(0.35);
constexpr sim::TimeNs kCriticalLockCost = sim::microseconds(0.5);

int ceil_log2(int n) { return n <= 1 ? 0 : std::bit_width(static_cast<unsigned>(n - 1)); }

}  // namespace

OmpRuntime::OmpRuntime(proc::SimProcess& process, int num_threads)
    : process_(process),
      num_threads_(num_threads),
      team_barrier_(process.engine(), static_cast<std::size_t>(num_threads)),
      critical_lock_(process.engine(), 1),
      thread_loop_seq_(static_cast<std::size_t>(num_threads), 0),
      thread_single_seq_(static_cast<std::size_t>(num_threads), 0) {
  DT_EXPECT(num_threads >= 1, "team needs at least one thread");
  DT_EXPECT(num_threads <= process.cluster().spec().cpus_per_node,
            "OpenMP team of ", num_threads, " threads does not fit on a ",
            process.cluster().spec().cpus_per_node, "-cpu node");
  team_.push_back(&process.main_thread());
  const int first_cpu = process.main_thread().cpu();
  for (int t = 1; t < num_threads; ++t) {
    team_.push_back(&process.add_thread(first_cpu + t));
  }
}

sim::Coro<void> OmpRuntime::parallel(proc::SimThread& master, RegionFn body) {
  DT_EXPECT(!in_region_, "nested parallel regions are not supported (Guide default)");
  DT_ASSERT(&master == team_[0], "parallel() must be entered by the team master");
  in_region_ = true;
  const int region_id = next_region_id_++;

  if (listener_ != nullptr) {
    co_await listener_->on_parallel_begin(master, region_id, num_threads_);
  }
  co_await master.compute(kForkBase + kForkPerThread * (num_threads_ - 1));

  // Fork: each worker runs as its own simulation process rooted on its
  // SimThread; join via a completion trigger.
  sim::Trigger join(process_.engine());
  int remaining = num_threads_ - 1;

  auto worker_main = [this, region_id](proc::SimThread& worker, const RegionFn& fn,
                                       int thread_num, sim::Trigger& done,
                                       int& left) -> sim::Coro<void> {
    if (listener_ != nullptr) co_await listener_->on_worker_begin(worker, region_id);
    co_await fn(worker, thread_num, num_threads_);
    if (listener_ != nullptr) co_await listener_->on_worker_end(worker, region_id);
    if (--left == 0) done.fire();
  };

  for (int t = 1; t < num_threads_; ++t) {
    process_.engine().spawn(worker_main(*team_[t], body, t, join, remaining),
                            str::format("omp.region%d.worker%d", region_id, t));
  }

  co_await body(master, 0, num_threads_);
  if (num_threads_ > 1) co_await join.wait();

  if (listener_ != nullptr) co_await listener_->on_parallel_end(master, region_id);
  in_region_ = false;
}

sim::Coro<void> OmpRuntime::barrier(proc::SimThread& thread) {
  co_await thread.compute(kBarrierPerRound * (1 + ceil_log2(num_threads_)));
  co_await team_barrier_.arrive_and_wait();
  co_await thread.gate();
}

OmpRuntime::LoopState& OmpRuntime::loop_state(int thread_num) {
  const std::uint64_t seq = thread_loop_seq_[static_cast<std::size_t>(thread_num)]++;
  auto [it, inserted] = loops_.try_emplace(seq);
  ++it->second.entered;
  return it->second;
}

sim::Coro<void> OmpRuntime::for_each(proc::SimThread& thread, int thread_num,
                                     std::int64_t iterations, Schedule schedule,
                                     std::int64_t chunk, const IterFn& body) {
  DT_EXPECT(in_region_, "worksharing loop outside a parallel region");
  DT_ASSERT(iterations >= 0);
  const int t = num_threads_;

  switch (schedule) {
    case Schedule::kStatic: {
      co_await thread.compute(kStaticSchedCost);
      // Block distribution, matching Guide's schedule(static).
      const std::int64_t base = iterations / t;
      const std::int64_t rem = iterations % t;
      const std::int64_t mine = base + (thread_num < rem ? 1 : 0);
      const std::int64_t start =
          thread_num * base + std::min<std::int64_t>(thread_num, rem);
      for (std::int64_t i = start; i < start + mine; ++i) {
        co_await body(thread, i);
      }
      break;
    }
    case Schedule::kDynamic:
    case Schedule::kGuided: {
      LoopState& state = loop_state(thread_num);
      if (state.entered == 1) {
        state.next = 0;
        state.remaining = iterations;
      }
      const std::int64_t min_chunk = std::max<std::int64_t>(chunk, 1);
      while (true) {
        // Coroutines only interleave at co_await, so claiming a chunk from
        // the shared counter needs no lock.
        if (state.remaining <= 0) break;
        std::int64_t take = min_chunk;
        if (schedule == Schedule::kGuided) {
          take = std::max<std::int64_t>(state.remaining / (2 * t), min_chunk);
        }
        take = std::min(take, state.remaining);
        const std::int64_t start = state.next;
        state.next += take;
        state.remaining -= take;
        co_await thread.compute(kDynamicClaimCost);
        for (std::int64_t i = start; i < start + take; ++i) {
          co_await body(thread, i);
        }
      }
      break;
    }
  }
  // Implicit end-of-loop barrier (no `nowait` modelled).
  co_await barrier(thread);
}

sim::Coro<void> OmpRuntime::critical(
    proc::SimThread& thread, const std::function<sim::Coro<void>(proc::SimThread&)>& body) {
  co_await critical_lock_.acquire();
  co_await thread.compute(kCriticalLockCost);
  co_await body(thread);
  critical_lock_.release();
}

sim::Coro<void> OmpRuntime::single(
    proc::SimThread& thread, int thread_num,
    const std::function<sim::Coro<void>(proc::SimThread&)>& body) {
  DT_EXPECT(in_region_, "single construct outside a parallel region");
  const std::uint64_t seq = thread_single_seq_[static_cast<std::size_t>(thread_num)]++;
  // Coroutines interleave only at co_await: claiming needs no lock.
  auto [it, first_arrival] = singles_.try_emplace(seq, true);
  if (first_arrival) {
    co_await thread.compute(kStaticSchedCost);  // claim the construct
    co_await body(thread);
  }
  co_await barrier(thread);
}

sim::Coro<void> OmpRuntime::master(
    proc::SimThread& thread, int thread_num,
    const std::function<sim::Coro<void>(proc::SimThread&)>& body) {
  DT_EXPECT(in_region_, "master construct outside a parallel region");
  if (thread_num == 0) co_await body(thread);
}

}  // namespace dyntrace::omp
