// Smg98: semicoarsening multigrid solver (paper Table 2, Figure 7a).
//
// Structure chosen to reproduce the paper's observations:
//   * 199 user functions; the 62-function solver subset contains the
//     coarse-grained V-cycle routines (moderate call counts, large bodies);
//   * the remaining functions are setup code (called once) plus tiny
//     box-loop/index helpers called at enormous frequency -- these are what
//     make the Full policy >7x slower at 64 CPUs, and what the Subset /
//     Full-Off configuration files deactivate;
//   * weak scaling: per-rank grid fixed, V-cycle count grows with log2(P)
//     (coarse-grid work and convergence degrade as the global problem
//     grows), so execution time increases with processor count.
#include <cmath>

#include "asci/app.hpp"
#include "support/strings.hpp"

namespace dyntrace::asci {

namespace {

constexpr int kLevels = 6;
constexpr int kSolverFns = 62;        // the subset
constexpr int kSetupFns = 36;         // called once each
constexpr int kUtilFns = 100;         // hot box-loop helpers
constexpr int kUtilKindsPerLevel = 6; // distinct helpers touched per level

// Per-(iteration, level-0) call count of one hot helper; halves per level.
// Calibrated with kUtilWorkNs and kSolverWorkNs so that Full/None >= 7 at
// 64 CPUs (see DESIGN.md §5 and bench/fig7a).
constexpr std::int64_t kUtilCallsBase = 940'000;
// Mean work of one hot helper call (tiny: index math + a few flops).
constexpr double kUtilWorkNs = 380;
// Mean work of one solver-routine invocation at level 0; halves per level.
constexpr double kSolverWorkNs = 22.0e6;
constexpr int kSolverCallsPerLevel = 10;

constexpr std::int64_t kHaloBytes = 256 * 1024;

std::shared_ptr<const image::SymbolTable> build_symbols() {
  auto symbols = std::make_shared<image::SymbolTable>();
  symbols->add("main", "smg98.c");
  symbols->add("MPI_Init", "libmpi");
  symbols->add("MPI_Finalize", "libmpi");
  // Solver subset: a few canonical hypre names plus generated kernels.
  symbols->add("hypre_SMGSolve", "smg_solve.c");
  symbols->add("hypre_SMGRelax", "smg_relax.c");
  symbols->add("hypre_SMGResidual", "smg_residual.c");
  symbols->add("hypre_SMGRestrict", "smg_restrict.c");
  symbols->add("hypre_SMGIntAdd", "smg_intadd.c");
  symbols->add("hypre_CyclicReduction", "cyclic_reduction.c");
  for (int i = 6; i < kSolverFns; ++i) {
    symbols->add(str::format("hypre_SMGCycle_%02d", i), "smg_cycle.c");
  }
  for (int i = 0; i < kSetupFns; ++i) {
    symbols->add(str::format("hypre_smg_setup_%02d", i), "smg_setup.c");
  }
  for (int i = 0; i < kUtilFns; ++i) {
    symbols->add(str::format("hypre_BoxLoop_%03d", i), "box_algebra.c");
  }
  return symbols;
}

std::vector<std::string> solver_names(const image::SymbolTable& symbols) {
  std::vector<std::string> out;
  for (const auto& fn : symbols.all()) {
    if (str::starts_with(fn.name, "hypre_SMG") || fn.name == "hypre_CyclicReduction") {
      out.push_back(fn.name);
    }
  }
  return out;
}

sim::Coro<void> body(AppContext& ctx, proc::SimThread& thread) {
  const int p = ctx.nprocs();
  const int rank = ctx.rank();
  Rng& rng = ctx.rng();
  mpi::Rank* mpi = ctx.mpi();

  // --- setup phase: every setup routine runs once -------------------------
  for (int i = 0; i < kSetupFns; ++i) {
    co_await ctx.leaf(thread, str::format("hypre_smg_setup_%02d", i),
                      sim::nanoseconds(rng.normal_at_least(9.0e6, 2.0e6, 1.0e6)));
  }
  if (mpi != nullptr) co_await mpi->allreduce(thread, 8);

  // --- V-cycles -------------------------------------------------------------
  const double log_p = p > 1 ? std::log2(static_cast<double>(p)) : 0.0;
  const std::int64_t cycles = ctx.iters(6.0 + log_p);
  const auto solvers = solver_names(ctx.process().image().symbols());

  for (std::int64_t it = 0; it < cycles; ++it) {
    for (int level = 0; level < kLevels; ++level) {
      // Hot box-loop helpers: the bulk of all function calls.
      for (int k = 0; k < kUtilKindsPerLevel; ++k) {
        const int util = (level * kUtilKindsPerLevel + k +
                          static_cast<int>(it) * 7) % kUtilFns;
        const std::int64_t count = kUtilCallsBase >> level;
        const auto work =
            sim::nanoseconds(rng.normal_at_least(kUtilWorkNs, kUtilWorkNs * 0.15, 80));
        co_await ctx.leaf_repeat(thread, str::format("hypre_BoxLoop_%03d", util), count,
                                 work);
        // Natural safe point: between box-loop batches, outside any
        // communication (offered on every rank at the same spot).
        co_await ctx.safe_point(thread);
      }
      // Coarse-grained solver routines (the instrumented subset).
      for (int k = 0; k < kSolverCallsPerLevel; ++k) {
        const auto& name = solvers[(level * kSolverCallsPerLevel + k +
                                    static_cast<int>(it) * 3) % solvers.size()];
        const double mean = kSolverWorkNs / static_cast<double>(1 << level);
        co_await ctx.leaf(thread, name,
                          sim::nanoseconds(rng.normal_at_least(mean, mean * 0.1, 1000)));
      }
      // Halo exchange with ring neighbours (surface shrinks with level).
      if (mpi != nullptr && p > 1) {
        const std::int64_t bytes = kHaloBytes >> level;
        const int right = (rank + 1) % p;
        const int left = (rank - 1 + p) % p;
        const int tag = 100 + level;
        co_await mpi->sendrecv(thread, right, tag, bytes, left, tag, nullptr);
      }
    }
    // Convergence check.
    co_await ctx.leaf(thread, "hypre_SMGResidual",
                      sim::nanoseconds(rng.normal_at_least(12.0e6, 1.0e6, 1.0e6)));
    if (mpi != nullptr) co_await mpi->allreduce(thread, 16);
  }
}

}  // namespace

const AppSpec& smg98() {
  static const AppSpec spec = [] {
    AppSpec s;
    s.name = "smg98";
    s.language = "MPI/C";
    s.description = "A multigrid solver";
    s.model = AppSpec::Model::kMpi;
    s.scaling = AppSpec::Scaling::kWeak;
    s.min_procs = 1;
    s.max_procs = 64;
    s.symbols = build_symbols();
    s.subset = solver_names(*s.symbols);
    s.dynamic_list = s.subset;
    s.body = body;
    return s;
  }();
  return spec;
}

}  // namespace dyntrace::asci
