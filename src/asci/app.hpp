// The ASCI kernel application framework (paper Table 2).
//
// Each application is described by an AppSpec: its symbol inventory, the
// "important subset" its authors identified for the Subset/Dynamic
// policies, and a body coroutine that expresses the computation as calls
// through the instrumentation protocol (SimThread::call_function) plus MPI
// / OpenMP operations.
//
// Hot leaf functions execute via AppContext::leaf_repeat, which runs the
// full probe protocol once and charges the remaining calls in aggregate
// using the library's steady-state per-call cost -- bit-exact in total
// charged time, while keeping host-side event counts bounded.  The
// aggregated calls still update VT statistics and the virtual trace-size
// counter (see vt::VtLib::note_synthetic_pairs).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "image/image.hpp"
#include "mpi/world.hpp"
#include "omp/runtime.hpp"
#include "proc/process.hpp"
#include "support/rng.hpp"
#include "vt/vtlib.hpp"

namespace dyntrace::asci {

class AppContext;

struct AppSpec {
  /// kMixed: MPI ranks each carrying an OpenMP team (the paper's headline
  /// use case, Figure 4: "sweep3d using 8 MPI processes x 4 OpenMP
  /// threads").
  enum class Model : std::uint8_t { kMpi, kOpenMP, kMixed };
  enum class Scaling : std::uint8_t { kWeak, kStrong };

  std::string name;
  std::string language;     ///< Table 2 "Type/Lang"
  std::string description;  ///< Table 2 description
  Model model = Model::kMpi;
  Scaling scaling = Scaling::kWeak;
  int min_procs = 1;
  int max_procs = 64;

  std::shared_ptr<const image::SymbolTable> symbols;

  /// The "important subset" (Subset policy re-activates these; Dynamic
  /// instruments them).
  std::vector<std::string> subset;

  /// Functions dynprof instruments under the Dynamic policy (== subset for
  /// Smg98/Sppm/Umt98; all user functions for Sweep3d, paper §4.3).
  std::vector<std::string> dynamic_list;

  /// The computation between MPI_Init/VT_init and finalization.
  using BodyFn = std::function<sim::Coro<void>(AppContext&, proc::SimThread&)>;
  BodyFn body;

  std::size_t user_function_count() const;
};

struct AppParams {
  int nprocs = 1;             ///< MPI ranks, or OpenMP threads for kOpenMP apps
  int threads_per_rank = 1;   ///< OpenMP team size per rank (kMixed apps)
  double problem_scale = 1.0; ///< scales iteration counts (tests use < 1)
  std::uint64_t seed = 42;
  /// Safe-point cadence: the bodies *offer* safe points at natural
  /// boundaries (AppContext::safe_point); every confsync_interval-th offer
  /// becomes a VT_confsync, with a power-of-two warm-up ramp (offers 1, 2,
  /// 4, ...) so a control plane gets early windows before settling into
  /// the steady cadence.  0 disables safe points entirely.
  int confsync_interval = 0;
  /// Run the statistics path on every fired confsync (Figure 8b / the
  /// control plane's feedback input).
  bool confsync_statistics = false;
};

/// Per-process runtime context handed to application bodies.
class AppContext {
 public:
  AppContext(const AppSpec& spec, AppParams params, proc::SimProcess& process, mpi::Rank* mpi,
             omp::OmpRuntime* omp, vt::VtLib* vt, Rng rng);

  const AppSpec& spec() const { return spec_; }
  const AppParams& params() const { return params_; }
  proc::SimProcess& process() { return process_; }
  mpi::Rank* mpi() { return mpi_; }
  omp::OmpRuntime* omp() { return omp_; }
  vt::VtLib* vt() { return vt_; }
  Rng& rng() { return rng_; }

  /// MPI rank (0 for OpenMP apps).
  int rank() const { return mpi_ != nullptr ? mpi_->rank() : 0; }
  int nprocs() const { return params_.nprocs; }

  image::FunctionId fid(std::string_view name) const;

  /// Call `name` through the instrumentation protocol with a custom body.
  sim::Coro<void> call(proc::SimThread& thread, std::string_view name,
                       proc::SimThread::BodyFn body);

  /// Call a leaf function that burns `work` CPU time.
  sim::Coro<void> leaf(proc::SimThread& thread, std::string_view name, sim::TimeNs work);

  /// Call a leaf `count` times with `work_each` per call: full protocol
  /// once, remainder charged in aggregate at the steady-state per-call cost.
  sim::Coro<void> leaf_repeat(proc::SimThread& thread, std::string_view name,
                              std::int64_t count, sim::TimeNs work_each);

  /// Iteration count scaled by problem_scale (>= 1).
  std::int64_t iters(double base) const;

  /// Offer a safe point (call from single-threaded regions at natural
  /// boundaries, identically on every rank).  Fires VT_confsync on the
  /// cadence described at AppParams::confsync_interval; a no-op when safe
  /// points are disabled or VT is not initialized.
  sim::Coro<void> safe_point(proc::SimThread& thread);

  /// Safe points offered so far (fired or not).
  std::int64_t safe_point_offers() const { return safe_point_offers_; }

  /// Steady-state instrumentation overhead of one enter/exit pair of `fn`
  /// in the current image/library state (public for tests and benches).
  sim::TimeNs steady_pair_overhead(image::FunctionId fn) const;

 private:
  const AppSpec& spec_;
  AppParams params_;
  proc::SimProcess& process_;
  mpi::Rank* mpi_;
  omp::OmpRuntime* omp_;
  vt::VtLib* vt_;
  Rng rng_;
  std::int64_t safe_point_offers_ = 0;
};

// --- the four kernels (built once, cached) -----------------------------------

const AppSpec& smg98();    ///< multigrid solver, MPI/C, 199 fns, 62 subset
const AppSpec& sppm();     ///< 3-D gas dynamics, MPI/F77, 22 fns, 7 subset
const AppSpec& sweep3d();  ///< neutron transport, MPI/F77, 21 fns, all dynamic
const AppSpec& umt98();    ///< Boltzmann transport, OpenMP/F77, 44 fns, 6 subset

/// Mixed-mode sweep3d: the configuration of the paper's Figure 4 (MPI
/// ranks each driving an OpenMP team through the sweep kernels).  An
/// extension beyond the four Table-2 evaluation kernels.
const AppSpec& sweep3d_hybrid();

/// The four Table-2 kernels (the paper's evaluation set).
std::vector<const AppSpec*> all_apps();

/// nullptr when unknown.
const AppSpec* find_app(std::string_view name);

}  // namespace dyntrace::asci
