// Sppm: simplified piecewise-parabolic-method 3-D gas dynamics
// (paper Table 2, Figure 7b).
//
// 22 user functions; the 7-function subset holds the directional hydro
// drivers where most *time* is spent, while 14 small interpolation/EOS
// helpers carry most of the *calls*.  Full is therefore clearly slower than
// None (≈1.5x at 64 CPUs) but far less extreme than Smg98, exactly as in
// the paper.  Weak scaling with a mild time increase from step-count growth
// and halo traffic.
#include <cmath>

#include "asci/app.hpp"
#include "support/strings.hpp"

namespace dyntrace::asci {

namespace {

constexpr int kHelperFns = 14;
// Per-(step, direction) calls of one helper (2 helpers touched per dir).
constexpr std::int64_t kHelperCalls = 135'000;
constexpr double kHelperWorkNs = 1'000;
// Driver (subset) work per directional pass.
constexpr double kDriverWorkNs = 1.45e9;
constexpr std::int64_t kHaloBytes = 512 * 1024;

const char* const kDrivers[7] = {"sppm_hydro_x", "sppm_hydro_y",  "sppm_hydro_z",
                                 "sppm_dinterp", "sppm_difuze",   "sppm_riemann",
                                 "sppm_courant"};

std::shared_ptr<const image::SymbolTable> build_symbols() {
  auto symbols = std::make_shared<image::SymbolTable>();
  symbols->add("main", "sppm.f");
  symbols->add("MPI_Init", "libmpi");
  symbols->add("MPI_Finalize", "libmpi");
  for (const char* name : kDrivers) symbols->add(name, "sppm_hydro.f");
  for (int i = 0; i < kHelperFns; ++i) {
    symbols->add(str::format("sppm_intrfc_%02d", i), "sppm_interp.f");
  }
  return symbols;
}

sim::Coro<void> body(AppContext& ctx, proc::SimThread& thread) {
  const int p = ctx.nprocs();
  const int rank = ctx.rank();
  Rng& rng = ctx.rng();
  mpi::Rank* mpi = ctx.mpi();

  // Grid / EOS setup inside the first driver call.
  co_await ctx.leaf(thread, "sppm_dinterp",
                    sim::nanoseconds(rng.normal_at_least(0.4e9, 0.05e9, 1e6)));

  const double log_p = p > 1 ? std::log2(static_cast<double>(p)) : 0.0;
  const std::int64_t steps = ctx.iters(8.0 + 1.2 * log_p);

  for (std::int64_t step = 0; step < steps; ++step) {
    // One directional double-sweep per dimension.
    for (int dir = 0; dir < 3; ++dir) {
      const char* driver = kDrivers[dir];
      co_await ctx.call(
          thread, driver,
          [&ctx, &rng, dir, step](proc::SimThread& t) -> sim::Coro<void> {
            // The driver's own flux computation...
            co_await t.compute(sim::nanoseconds(
                ctx.rng().normal_at_least(kDriverWorkNs, kDriverWorkNs * 0.06, 1e6)));
            // ...and the hot interpolation helpers it calls per cell.
            for (int h = 0; h < 2; ++h) {
              const int helper = (dir * 2 + h + static_cast<int>(step) * 5) % kHelperFns;
              const auto work = sim::nanoseconds(
                  rng.normal_at_least(kHelperWorkNs, kHelperWorkNs * 0.2, 120));
              co_await ctx.leaf_repeat(t, str::format("sppm_intrfc_%02d", helper),
                                       kHelperCalls, work);
            }
          });
      // Face exchange with both ring neighbours, overlapped with the next
      // pass's boundary preparation (non-blocking, as real sPPM does).
      if (mpi != nullptr && p > 1) {
        const int right = (rank + 1) % p;
        const int left = (rank - 1 + p) % p;
        const int tag = 200 + dir;
        mpi::Rank::Request send_req, recv_req;
        mpi->irecv(left, tag, &recv_req);
        co_await mpi->isend(thread, right, tag, kHaloBytes, &send_req);
        co_await ctx.leaf(thread, "sppm_difuze",
                          sim::nanoseconds(rng.normal_at_least(6e6, 1e6, 1e5)));
        co_await mpi->wait(thread, send_req);
        co_await mpi->wait(thread, recv_req, nullptr);
      }
    }
    // Courant condition: global timestep reduction.
    co_await ctx.leaf(thread, "sppm_courant",
                      sim::nanoseconds(rng.normal_at_least(25e6, 3e6, 1e6)));
    if (mpi != nullptr) co_await mpi->allreduce(thread, 8);
    // Natural safe point: the step boundary, after the global reduction
    // (every rank arrives here in lockstep).
    co_await ctx.safe_point(thread);
  }
}

}  // namespace

const AppSpec& sppm() {
  static const AppSpec spec = [] {
    AppSpec s;
    s.name = "sppm";
    s.language = "MPI/F77";
    s.description = "A 3D gas dynamics problem";
    s.model = AppSpec::Model::kMpi;
    s.scaling = AppSpec::Scaling::kWeak;
    s.min_procs = 1;
    s.max_procs = 64;
    s.symbols = build_symbols();
    s.subset.assign(std::begin(kDrivers), std::end(kDrivers));
    s.dynamic_list = s.subset;
    s.body = body;
    return s;
  }();
  return spec;
}

}  // namespace dyntrace::asci
