#include "asci/app.hpp"

#include <cmath>

#include "guide/compiler.hpp"
#include "support/common.hpp"

namespace dyntrace::asci {

std::size_t AppSpec::user_function_count() const {
  std::size_t n = 0;
  for (const auto& fn : symbols->all()) {
    if (!guide::is_runtime_module(fn.module)) ++n;
  }
  return n;
}

AppContext::AppContext(const AppSpec& spec, AppParams params, proc::SimProcess& process,
                       mpi::Rank* mpi, omp::OmpRuntime* omp, vt::VtLib* vt, Rng rng)
    : spec_(spec),
      params_(params),
      process_(process),
      mpi_(mpi),
      omp_(omp),
      vt_(vt),
      rng_(rng) {}

image::FunctionId AppContext::fid(std::string_view name) const {
  const image::FunctionInfo* info = process_.image().symbols().find(name);
  DT_EXPECT(info != nullptr, spec_.name, ": unknown function '", std::string(name), "'");
  return info->id;
}

sim::Coro<void> AppContext::call(proc::SimThread& thread, std::string_view name,
                                 proc::SimThread::BodyFn body) {
  co_await thread.call_function(fid(name), body);
}

sim::Coro<void> AppContext::leaf(proc::SimThread& thread, std::string_view name,
                                 sim::TimeNs work) {
  co_await thread.call_function(fid(name), [work](proc::SimThread& t) -> sim::Coro<void> {
    co_await t.compute(work);
  });
}

sim::TimeNs AppContext::steady_pair_overhead(image::FunctionId fn) const {
  // The VT library prices its own calls (vt::VtLib::steady_pair_overhead);
  // without a library linked, only the structural trampoline cost remains
  // (snippet bodies call into a registry that has nothing to do).
  if (vt_ != nullptr) return vt_->steady_pair_overhead(fn);
  const image::ProgramImage& img = process_.image();
  const machine::CostModel& costs = process_.cluster().spec().costs;
  return img.trampoline_overhead(fn, image::ProbeWhere::kEntry, costs) +
         img.trampoline_overhead(fn, image::ProbeWhere::kExit, costs);
}

sim::Coro<void> AppContext::safe_point(proc::SimThread& thread) {
  if (params_.confsync_interval <= 0 || vt_ == nullptr || !vt_->initialized()) co_return;
  const std::int64_t offer = ++safe_point_offers_;
  // Power-of-two ramp before the first full interval, then the steady
  // cadence.  Deterministic in the offer index alone, so every rank fires
  // at the same offers and VT_confsync stays collective.
  bool fire;
  if (offer < params_.confsync_interval) {
    fire = (offer & (offer - 1)) == 0;
  } else {
    fire = offer % params_.confsync_interval == 0;
  }
  if (fire) co_await vt_->confsync(thread, params_.confsync_statistics);
}

sim::Coro<void> AppContext::leaf_repeat(proc::SimThread& thread, std::string_view name,
                                        std::int64_t count, sim::TimeNs work_each) {
  if (count <= 0) co_return;
  const image::FunctionId fn = fid(name);
  co_await thread.call_function(fn, [work_each](proc::SimThread& t) -> sim::Coro<void> {
    co_await t.compute(work_each);
  });
  if (count == 1) co_return;

  const std::int64_t rest = count - 1;
  const sim::TimeNs per_pair = steady_pair_overhead(fn);
  co_await thread.compute(rest * (work_each + per_pair));

  const image::ProgramImage& img = process_.image();
  const bool instrumented =
      img.static_instrumented(fn) ||
      img.probe_point(fn, image::ProbeWhere::kEntry).has_base_trampoline() ||
      img.probe_point(fn, image::ProbeWhere::kExit).has_base_trampoline();
  if (instrumented && vt_ != nullptr) {
    vt_->note_synthetic_pairs(fn, static_cast<std::uint64_t>(rest), work_each + per_pair,
                              thread.tid());
  }
}

std::int64_t AppContext::iters(double base) const {
  const double scaled = base * params_.problem_scale;
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(scaled)));
}

std::vector<const AppSpec*> all_apps() {
  return {&smg98(), &sppm(), &sweep3d(), &umt98()};
}

const AppSpec* find_app(std::string_view name) {
  for (const AppSpec* spec : all_apps()) {
    if (spec->name == name) return spec;
  }
  if (sweep3d_hybrid().name == name) return &sweep3d_hybrid();
  return nullptr;
}

}  // namespace dyntrace::asci
