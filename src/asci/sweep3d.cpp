// Sweep3d: Sn neutron-transport wavefront sweep (paper Table 2, Figure 7c).
//
// 21 user functions, all coarse-grained: a handful of sweep kernels invoked
// ~a hundred times per rank with large bodies.  Instrumentation overhead is
// therefore negligible under *every* policy -- Figure 7(c)'s flat spread --
// and the paper instruments all 21 functions in the Dynamic version.
//
// Strong scaling: the global grid is fixed (the input specifies the global
// problem size), so per-rank work ~ 1/P plus pipeline fill, and execution
// time *decreases* with processor count.  The MPI version does not run on a
// single process (min_procs = 2), as in the paper.
#include <cmath>

#include "asci/app.hpp"
#include "support/strings.hpp"

namespace dyntrace::asci {

namespace {

constexpr int kOctants = 8;
// Total sweep work across all ranks and timesteps (strong scaling).
constexpr double kTotalWorkNs = 480.0e9;
constexpr double kTimesteps = 12.0;
// Each rank's per-octant block is pipelined in k-plane chunks: downstream
// ranks start after one chunk, not after the whole block -- without this
// the wavefront would serialise and the code would not strong-scale.
constexpr int kPipelineChunks = 16;
constexpr std::int64_t kAngleBlockBytes = 96 * 1024 / kPipelineChunks;

std::shared_ptr<const image::SymbolTable> build_symbols() {
  auto symbols = std::make_shared<image::SymbolTable>();
  symbols->add("main", "driver.f");
  symbols->add("MPI_Init", "libmpi");
  symbols->add("MPI_Finalize", "libmpi");
  // 20 further user functions (21 with main).
  symbols->add("inner", "inner.f");
  symbols->add("outer", "outer.f");
  symbols->add("sweep", "sweep.f");
  symbols->add("source", "source.f");
  symbols->add("flux_err", "flux_err.f");
  symbols->add("initialize", "initialize.f");
  symbols->add("decomp", "decomp.f");
  symbols->add("read_input", "read_input.f");
  symbols->add("task_init", "task_init.f");
  symbols->add("initxs", "initxs.f");
  symbols->add("initsnc", "initsnc.f");
  symbols->add("octant", "octant.f");
  symbols->add("rcv_real", "mpi_stuff.f");
  symbols->add("snd_real", "mpi_stuff.f");
  symbols->add("global_int_sum", "global.f");
  symbols->add("global_real_sum", "global.f");
  symbols->add("global_real_max", "global.f");
  symbols->add("barrier_sync", "global.f");
  symbols->add("timers", "timers.f");
  symbols->add("last", "last.f");
  return symbols;
}

sim::Coro<void> body(AppContext& ctx, proc::SimThread& thread) {
  const int p = ctx.nprocs();
  const int rank = ctx.rank();
  Rng& rng = ctx.rng();
  mpi::Rank* mpi = ctx.mpi();

  co_await ctx.leaf(thread, "read_input", sim::milliseconds(40));
  co_await ctx.leaf(thread, "decomp", sim::milliseconds(25));
  co_await ctx.leaf(thread, "initialize",
                    sim::nanoseconds(rng.normal_at_least(0.9e9, 0.1e9, 1e6)));
  co_await ctx.leaf(thread, "initxs", sim::milliseconds(180));
  co_await ctx.leaf(thread, "initsnc", sim::milliseconds(120));

  const std::int64_t steps = ctx.iters(kTimesteps);
  // Per-rank block work per (timestep, octant).
  const double block_work =
      kTotalWorkNs / (kTimesteps * kOctants * static_cast<double>(p));

  for (std::int64_t step = 0; step < steps; ++step) {
    co_await ctx.leaf(thread, "source",
                      sim::nanoseconds(rng.normal_at_least(block_work * 0.4,
                                                           block_work * 0.03, 1e5)));
    for (int oct = 0; oct < kOctants; ++oct) {
      // 1-D pipeline: even octants sweep rank 0 -> P-1, odd ones reverse.
      const bool forward = (oct % 2) == 0;
      const int upstream = forward ? rank - 1 : rank + 1;
      const int downstream = forward ? rank + 1 : rank - 1;
      const int tag = 300 + oct;

      co_await ctx.call(thread, "octant", [](proc::SimThread& t) -> sim::Coro<void> {
        co_await t.compute(sim::microseconds(40));
      });
      const double chunk_work = block_work / kPipelineChunks;
      for (int chunk = 0; chunk < kPipelineChunks; ++chunk) {
        const int chunk_tag = tag * kPipelineChunks + chunk;
        if (mpi != nullptr && upstream >= 0 && upstream < p) {
          co_await ctx.call(thread, "rcv_real",
                            [mpi, upstream, chunk_tag](proc::SimThread& t) -> sim::Coro<void> {
                              co_await mpi->recv(t, upstream, chunk_tag, nullptr);
                            });
        }
        co_await ctx.leaf(thread, "sweep",
                          sim::nanoseconds(rng.normal_at_least(chunk_work,
                                                               chunk_work * 0.04, 1e4)));
        if (mpi != nullptr && downstream >= 0 && downstream < p) {
          co_await ctx.call(thread, "snd_real",
                            [mpi, downstream, chunk_tag](proc::SimThread& t) -> sim::Coro<void> {
                              co_await mpi->send(t, downstream, chunk_tag, kAngleBlockBytes);
                            });
        }
      }
    }
    co_await ctx.leaf(thread, "flux_err",
                      sim::nanoseconds(rng.normal_at_least(block_work * 0.15,
                                                           block_work * 0.02, 1e5)));
    if (mpi != nullptr) {
      co_await ctx.call(thread, "global_real_max",
                        [mpi](proc::SimThread& t) -> sim::Coro<void> {
                          co_await mpi->allreduce(t, 8);
                        });
    }
  }
  co_await ctx.leaf(thread, "last", sim::milliseconds(30));
}

}  // namespace

const AppSpec& sweep3d() {
  static const AppSpec spec = [] {
    AppSpec s;
    s.name = "sweep3d";
    s.language = "MPI/F77";
    s.description = "A neutron transport problem";
    s.model = AppSpec::Model::kMpi;
    s.scaling = AppSpec::Scaling::kStrong;
    s.min_procs = 2;  // the MPI version does not execute correctly on 1 CPU
    s.max_procs = 64;
    s.symbols = build_symbols();
    // No Subset policy in the paper; Dynamic instruments all user functions.
    s.subset = {};
    for (const auto& fn : s.symbols->all()) {
      if (fn.module != "libmpi") s.dynamic_list.push_back(fn.name);
    }
    s.body = body;
    return s;
  }();
  return spec;
}


// ---------------------------------------------------------------------------
// Mixed-mode variant (paper Figure 4: 8 MPI processes x 4 OpenMP threads)
// ---------------------------------------------------------------------------

namespace {

sim::Coro<void> hybrid_body(AppContext& ctx, proc::SimThread& thread) {
  const int p = ctx.nprocs();
  const int rank = ctx.rank();
  Rng& rng = ctx.rng();
  mpi::Rank* mpi = ctx.mpi();
  omp::OmpRuntime* omp = ctx.omp();
  DT_ASSERT(omp != nullptr, "hybrid sweep3d needs an OpenMP team per rank");
  const int team = omp->num_threads();

  co_await ctx.leaf(thread, "read_input", sim::milliseconds(40));
  co_await ctx.leaf(thread, "decomp", sim::milliseconds(25));
  co_await ctx.leaf(thread, "initialize",
                    sim::nanoseconds(rng.normal_at_least(0.9e9, 0.1e9, 1e6)));

  const std::int64_t steps = ctx.iters(kTimesteps);
  const double block_work =
      kTotalWorkNs / (kTimesteps * kOctants * static_cast<double>(p));

  for (std::int64_t step = 0; step < steps; ++step) {
    co_await ctx.leaf(thread, "source",
                      sim::nanoseconds(rng.normal_at_least(block_work * 0.4,
                                                           block_work * 0.03, 1e5)));
    for (int oct = 0; oct < kOctants; ++oct) {
      const bool forward = (oct % 2) == 0;
      const int upstream = forward ? rank - 1 : rank + 1;
      const int downstream = forward ? rank + 1 : rank - 1;
      const int tag = 300 + oct;
      const double chunk_work = block_work / kPipelineChunks;

      for (int chunk = 0; chunk < kPipelineChunks; ++chunk) {
        const int chunk_tag = tag * kPipelineChunks + chunk;
        // MPI from the master thread only (funneled hybrid style)...
        if (mpi != nullptr && upstream >= 0 && upstream < p) {
          co_await ctx.call(thread, "rcv_real",
                            [mpi, upstream, chunk_tag](proc::SimThread& t) -> sim::Coro<void> {
                              co_await mpi->recv(t, upstream, chunk_tag, nullptr);
                            });
        }
        // ...then the angle block is swept by the OpenMP team.
        co_await omp->parallel(
            thread,
            [&ctx, &rng, chunk_work, team](proc::SimThread& wt, int, int) -> sim::Coro<void> {
              const double share = chunk_work / team;
              co_await ctx.call(wt, "sweep", [&](proc::SimThread& t3) -> sim::Coro<void> {
                co_await t3.compute(
                    sim::nanoseconds(rng.normal_at_least(share, share * 0.05, 1e3)));
              });
            });
        if (mpi != nullptr && downstream >= 0 && downstream < p) {
          co_await ctx.call(thread, "snd_real",
                            [mpi, downstream, chunk_tag](proc::SimThread& t) -> sim::Coro<void> {
                              co_await mpi->send(t, downstream, chunk_tag, kAngleBlockBytes);
                            });
        }
      }
    }
    co_await ctx.leaf(thread, "flux_err",
                      sim::nanoseconds(rng.normal_at_least(block_work * 0.15,
                                                           block_work * 0.02, 1e5)));
    if (mpi != nullptr) {
      co_await ctx.call(thread, "global_real_max",
                        [mpi](proc::SimThread& t) -> sim::Coro<void> {
                          co_await mpi->allreduce(t, 8);
                        });
    }
  }
  co_await ctx.leaf(thread, "last", sim::milliseconds(30));
}

}  // namespace

const AppSpec& sweep3d_hybrid() {
  static const AppSpec spec = [] {
    AppSpec s;
    s.name = "sweep3d-hybrid";
    s.language = "MPI+OMP/F77";
    s.description = "Neutron transport, mixed MPI/OpenMP (Figure 4 configuration)";
    s.model = AppSpec::Model::kMixed;
    s.scaling = AppSpec::Scaling::kStrong;
    s.min_procs = 2;
    s.max_procs = 64;
    s.symbols = build_symbols();
    s.subset = {};
    for (const auto& fn : s.symbols->all()) {
      if (fn.module != "libmpi") s.dynamic_list.push_back(fn.name);
    }
    s.body = hybrid_body;
    return s;
  }();
  return spec;
}

}  // namespace dyntrace::asci
