// Umt98: unstructured-mesh Boltzmann transport, OpenMP (paper Table 2,
// Figure 7d).
//
// 44 user functions, "most of which perform initialization"; the 6-function
// subset carries the transport sweep.  The hot per-(zone,angle) helper calls
// live in a few flux kernels *outside* the subset, giving Full a noticeable
// but moderate overhead and Dynamic a small win over Subset/Full-Off -- the
// paper's Figure 7(d) shape.
//
// Strong scaling on one SMP node (1-8 threads): the input fixes the global
// problem, each thread takes zones/T.  OpenMP threads share one process
// image, which is why dynprof's instrumentation time is flat in Figure 9.
#include <cmath>

#include "asci/app.hpp"
#include "support/strings.hpp"

namespace dyntrace::asci {

namespace {

constexpr int kInitFns = 30;
constexpr int kHotFns = 7;  // flux/accumulation helpers (not in the subset)
constexpr double kTimesteps = 8.0;
// Total hot helper calls per timestep across the whole team (strong
// scaling: divided over threads).
constexpr std::int64_t kHotCallsPerStep = 1'200'000;
constexpr double kHotWorkNs = 30'000;
// Serial per-step work by the master outside the parallel region.
constexpr double kSerialStepWorkNs = 0.9e9;

const char* const kCore[6] = {"snswp3d", "snflwxyz", "snneed",
                              "snmoments", "snqq", "sntal"};

std::shared_ptr<const image::SymbolTable> build_symbols() {
  auto symbols = std::make_shared<image::SymbolTable>();
  symbols->add("main", "umt98.f");
  symbols->add("VT_init", "libvt");  // statically inserted at main() by Guide
  for (const char* name : kCore) symbols->add(name, "umt_transport.f");
  for (int i = 0; i < kHotFns; ++i) {
    symbols->add(str::format("umt_flux_%02d", i), "umt_flux.f");
  }
  for (int i = 0; i < kInitFns; ++i) {
    symbols->add(str::format("umt_init_%02d", i), "umt_setup.f");
  }
  return symbols;
}

sim::Coro<void> body(AppContext& ctx, proc::SimThread& thread) {
  const int t_count = ctx.nprocs();  // OpenMP threads
  Rng& rng = ctx.rng();
  omp::OmpRuntime* omp = ctx.omp();
  DT_ASSERT(omp != nullptr, "umt98 requires the OpenMP runtime");

  // --- serial initialization (most of the 44 functions live here) ---------
  for (int i = 0; i < kInitFns; ++i) {
    co_await ctx.leaf(thread, str::format("umt_init_%02d", i),
                      sim::nanoseconds(rng.normal_at_least(120e6, 25e6, 5e6)));
  }

  const std::int64_t steps = ctx.iters(kTimesteps);
  const std::int64_t hot_calls_per_thread = kHotCallsPerStep / t_count;

  for (std::int64_t step = 0; step < steps; ++step) {
    co_await ctx.leaf(thread, "snqq",
                      sim::nanoseconds(rng.normal_at_least(kSerialStepWorkNs * 0.1,
                                                           8e6, 1e6)));
    // The transport sweep: one parallel region per timestep.
    co_await omp->parallel(
        thread,
        [&ctx, step, hot_calls_per_thread](proc::SimThread& worker, int tnum,
                                           int nthreads) -> sim::Coro<void> {
          // Each thread runs the core sweep kernels over its zone share;
          // the kernels call the hot flux helpers per (zone, angle).
          for (int c = 0; c < 3; ++c) {
            const char* core = kCore[(c + static_cast<int>(step)) % 6];
            co_await ctx.call(
                worker, core,
                [&ctx, tnum, c, step, hot_calls_per_thread](proc::SimThread& t)
                    -> sim::Coro<void> {
                  co_await t.compute(sim::microseconds(300));
                  const int hot = (c * 2 + tnum + static_cast<int>(step)) % kHotFns;
                  co_await ctx.leaf_repeat(
                      t, str::format("umt_flux_%02d", hot), hot_calls_per_thread / 3,
                      sim::nanoseconds(kHotWorkNs));
                });
          }
          // Worksharing loop: angular moment accumulation.
          co_await ctx.omp()->for_each(
              worker, tnum, /*iterations=*/96, omp::Schedule::kDynamic, /*chunk=*/4,
              [&ctx](proc::SimThread& t, std::int64_t) -> sim::Coro<void> {
                co_await ctx.leaf(t, "snmoments", sim::microseconds(900));
              });
          (void)nthreads;
        });
    // Serial convergence bookkeeping.
    co_await ctx.leaf(thread, "sntal",
                      sim::nanoseconds(rng.normal_at_least(kSerialStepWorkNs * 0.05,
                                                           4e6, 1e6)));
  }
}

}  // namespace

const AppSpec& umt98() {
  static const AppSpec spec = [] {
    AppSpec s;
    s.name = "umt98";
    s.language = "OMP/F77";
    s.description = "The Boltzmann transport equation";
    s.model = AppSpec::Model::kOpenMP;
    s.scaling = AppSpec::Scaling::kStrong;
    s.min_procs = 1;
    s.max_procs = 8;  // one SMP node
    s.symbols = build_symbols();
    s.subset.assign(std::begin(kCore), std::end(kCore));
    s.dynamic_list = s.subset;
    s.body = body;
    return s;
  }();
  return spec;
}

}  // namespace dyntrace::asci
