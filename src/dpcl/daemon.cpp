#include "dpcl/daemon.hpp"

#include <algorithm>
#include <cmath>

#include "fault/injector.hpp"
#include "support/common.hpp"
#include "support/strings.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::dpcl {

namespace {

/// Super-daemon costs: user authentication and forking a comm daemon.
constexpr sim::TimeNs kAuthCost = sim::milliseconds(40);
constexpr sim::TimeNs kForkCommDaemonCost = sim::milliseconds(85);
constexpr std::int64_t kAckBytes = 64;

/// Service time scaled by a degrade-daemon factor (gray failure: the
/// daemon is alive but slow).  1.0 is the overwhelmingly common case.
sim::TimeNs degraded(sim::TimeNs cost, double factor) {
  if (factor == 1.0) return cost;
  return static_cast<sim::TimeNs>(std::llround(static_cast<double>(cost) * factor));
}

/// Deliver an ack to the waiter's node, subjecting it to the fault
/// injector's daemon-channel message fate when one is installed (without
/// one this is exactly the legacy single delivery).
void deliver_ack(machine::Cluster& cluster, int src_node, int reply_node,
                 const std::shared_ptr<AckState>& ack, int failures, sim::TimeNs now) {
  sim::TimeNs delay = cluster.message_delay(src_node, reply_node, kAckBytes, now);
  int copies = 1;
  if (fault::FaultInjector* injector = cluster.fault_injector()) {
    const fault::MessageFate fate =
        injector->message_fate(fault::Channel::kDaemon, src_node, reply_node, now);
    copies = fate.drop ? 0 : 1 + fate.duplicates;
    delay = static_cast<sim::TimeNs>(
        std::llround(static_cast<double>(delay) * fate.delay_factor));
  }
  for (int i = 0; i < copies; ++i) {
    cluster.engine_for_node(reply_node).deliver_at(now + delay, [ack, failures] {
      ack->failed += failures;
      if (--ack->remaining == 0) ack->done.fire();
    });
  }
}

}  // namespace

std::int64_t request_bytes(const Request& request) {
  std::int64_t bytes = 256;  // header + pid list
  if (request.snippet != nullptr) {
    bytes += 64 * request.snippet->primitive_count();  // marshalled AST
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// CommDaemon
// ---------------------------------------------------------------------------

namespace {

/// Shared start logic: spawn `body` on the daemon's home engine, routing
/// through a zero-byte fork message when the starter sits on another node.
template <typename SpawnFn>
void start_daemon(machine::Cluster& cluster, sim::Engine& home, int node,
                  proc::SimThread* origin, SpawnFn spawn) {
  if (origin == nullptr || origin->process().node() == node) {
    spawn();
    return;
  }
  const sim::TimeNs now = origin->engine().now();
  const sim::TimeNs delay =
      cluster.message_delay(origin->process().node(), node, 0, now);
  home.deliver_at(now + delay, std::move(spawn));
}

}  // namespace

CommDaemon::CommDaemon(machine::Cluster& cluster, proc::ParallelJob& job, int node)
    : cluster_(cluster),
      job_(job),
      node_(node),
      engine_(cluster.engine_for_node(node)),
      inbox_(engine_) {}

void CommDaemon::start(proc::SimThread* origin) {
  DT_ASSERT(!started_, "daemon already started");
  started_ = true;
  start_daemon(cluster_, engine_, node_, origin, [this] {
    engine_.spawn(loop(), str::format("dpcl.commd.node%d", node_),
                  sim::Engine::SpawnOptions{.daemon = true});
  });
}

sim::Coro<void> CommDaemon::loop() {
  sim::Engine& engine = engine_;
  while (true) {
    Request request = co_await inbox_.recv();
    fault::FaultInjector* injector = cluster_.fault_injector();
    if (injector != nullptr && !injector->daemon_alive(node_, engine.now())) {
      // The daemon died: requests reach a closed socket.  No dispatch, no
      // ack -- the sender's deadline is what detects this.
      continue;
    }
    ++requests_handled_;
    // A degrade-daemon action stretches the whole service time (dispatch
    // and per-target work), evaluated once at receipt: the daemon answers,
    // just `factor` times slower -- the gray failure the tool-side health
    // tracker has to detect from latency alone.
    const double degrade =
        injector != nullptr ? injector->daemon_degrade_factor(node_, engine.now()) : 1.0;
    co_await engine.sleep(degraded(cluster_.spec().costs.dpcl_daemon_dispatch, degrade));
    if (request.request_id != 0) {
      const auto it = completed_.find(request.request_id);
      if (it != completed_.end()) {
        // Retry of a request this daemon already executed (its ack was
        // lost): re-ack without re-running the side effects.
        telemetry::Registry& reg = telemetry::current();
        reg.add(reg.metrics().dpcl_dedup_hits);
        send_ack(request, it->second);
        continue;
      }
    }
    const int failures = co_await execute(request, degrade);
    if (request.request_id != 0) {
      completed_[request.request_id] = failures;
      // Deterministic eviction: ids are monotonic, so begin() is always
      // the oldest completed entry (see set_dedup_capacity).
      while (completed_.size() > dedup_capacity_) {
        completed_.erase(completed_.begin());
        telemetry::Registry& reg = telemetry::current();
        reg.add(reg.metrics().dpcl_dedup_evictions);
      }
    }
    send_ack(request, failures);
  }
}

void CommDaemon::send_ack(const Request& request, int failures) {
  if (request.ack == nullptr) return;
  // The ack lands on the tool node's shard, where the waiter lives.
  deliver_ack(cluster_, node_, request.reply_node, request.ack, failures, engine_.now());
}

sim::Coro<int> CommDaemon::execute(const Request& request, double degrade) {
  sim::Engine& engine = engine_;
  const machine::CostModel& costs = cluster_.spec().costs;

  int failures = 0;
  for (const int pid : request.pids) {
    proc::SimProcess& process = job_.process(pid);
    DT_ASSERT(process.node() == node_, "daemon on node ", node_, " asked to touch pid ", pid,
              " on node ", process.node());
    if (process.terminated().fired() &&
        (request.kind == Request::Kind::kExecute || cluster_.fault_injector() != nullptr)) {
      // The target exited before dispatch (ptrace would return ESRCH).
      // A kExecute against a dead process would block on its completion
      // forever, leaking the whole request's ack -- always count the
      // failure and move on.  The other kinds are harmless no-ops on the
      // simulated corpse, so the legacy path keeps its historical timing;
      // under fault injection every kind resolves as a per-pid failure.
      ++failures;
      continue;
    }
    switch (request.kind) {
      case Request::Kind::kAttach:
        // ptrace attach + read/analyse the executable image.
        co_await engine.sleep(degraded(costs.dpcl_connect, degrade));
        co_await engine.sleep(degraded(costs.dpcl_parse_image, degrade));
        break;
      case Request::Kind::kInstall: {
        DT_ASSERT(request.snippet != nullptr);
        const int prims = std::max(1, request.snippet->primitive_count());
        co_await engine.sleep(degraded(costs.dpcl_patch_per_probe * prims, degrade));
        process.image().install_probe(request.fn, request.where, request.snippet,
                                      request.active);
        break;
      }
      case Request::Kind::kRemoveFunction: {
        co_await engine.sleep(degraded(costs.dpcl_patch_per_probe, degrade));
        auto& img = process.image();
        for (const auto where : {image::ProbeWhere::kEntry, image::ProbeWhere::kExit}) {
          // Collect handles first: removal mutates the mini list.
          std::vector<image::ProbeHandle> handles;
          for (const auto& probe : img.probe_point(request.fn, where).minis) {
            handles.push_back(probe.handle);
          }
          for (const auto handle : handles) img.remove_probe(handle);
        }
        break;
      }
      case Request::Kind::kActivateFunction: {
        co_await engine.sleep(degraded(costs.dpcl_patch_per_probe / 4, degrade));
        auto& img = process.image();
        for (const auto where : {image::ProbeWhere::kEntry, image::ProbeWhere::kExit}) {
          for (const auto& probe : img.probe_point(request.fn, where).minis) {
            img.set_probe_active(probe.handle, request.active);
          }
        }
        break;
      }
      case Request::Kind::kSuspend:
        co_await engine.sleep(degraded(costs.dpcl_suspend_resume, degrade));
        process.suspend();
        break;
      case Request::Kind::kResume:
        co_await engine.sleep(degraded(costs.dpcl_suspend_resume, degrade));
        process.resume();
        break;
      case Request::Kind::kSetFlag:
        co_await engine.sleep(degraded(costs.dpcl_suspend_resume / 2, degrade));
        process.set_flag(request.flag, request.value);
        break;
      case Request::Kind::kExecute: {
        // Inferior RPC: the snippet runs once on a transient thread inside
        // the target's address space, with full access to its libraries
        // and memory.  The daemon waits for completion before acking.
        DT_ASSERT(request.snippet != nullptr);
        co_await engine.sleep(degraded(costs.dpcl_patch_per_probe / 2, degrade));  // stage the code
        proc::SimThread& rpc = process.add_thread(process.main_thread().cpu());
        co_await rpc.exec_snippet(*request.snippet);
        break;
      }
    }
  }
  co_return failures;
}

// ---------------------------------------------------------------------------
// SuperDaemon
// ---------------------------------------------------------------------------

SuperDaemon::SuperDaemon(machine::Cluster& cluster, int node)
    : cluster_(cluster),
      node_(node),
      engine_(cluster.engine_for_node(node)),
      inbox_(engine_) {}

void SuperDaemon::start(proc::SimThread* origin) {
  DT_ASSERT(!started_, "super daemon already started");
  started_ = true;
  start_daemon(cluster_, engine_, node_, origin, [this] {
    engine_.spawn(loop(), str::format("dpcl.superd.node%d", node_),
                  sim::Engine::SpawnOptions{.daemon = true});
  });
}

sim::Coro<void> SuperDaemon::loop() {
  sim::Engine& engine = engine_;
  while (true) {
    ConnectRequest request = co_await inbox_.recv();
    fault::FaultInjector* injector = cluster_.fault_injector();
    if (injector != nullptr && !injector->daemon_alive(node_, engine.now())) {
      continue;  // the node's daemon infrastructure is gone
    }
    ++connections_;
    // Authenticate the user, then fork the per-user communication daemon.
    // A degraded node's super daemon suffers the same slowdown.
    const double degrade =
        injector != nullptr ? injector->daemon_degrade_factor(node_, engine.now()) : 1.0;
    co_await engine.sleep(degraded(kAuthCost, degrade));
    co_await engine.sleep(degraded(kForkCommDaemonCost, degrade));
    if (request.ack != nullptr) {
      deliver_ack(cluster_, node_, request.reply_node, request.ack, 0, engine.now());
    }
  }
}

}  // namespace dyntrace::dpcl
