#include "dpcl/daemon.hpp"

#include <algorithm>

#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::dpcl {

namespace {

/// Super-daemon costs: user authentication and forking a comm daemon.
constexpr sim::TimeNs kAuthCost = sim::milliseconds(40);
constexpr sim::TimeNs kForkCommDaemonCost = sim::milliseconds(85);
constexpr std::int64_t kAckBytes = 64;

}  // namespace

std::int64_t request_bytes(const Request& request) {
  std::int64_t bytes = 256;  // header + pid list
  if (request.snippet != nullptr) {
    bytes += 64 * request.snippet->primitive_count();  // marshalled AST
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// CommDaemon
// ---------------------------------------------------------------------------

namespace {

/// Shared start logic: spawn `body` on the daemon's home engine, routing
/// through a zero-byte fork message when the starter sits on another node.
template <typename SpawnFn>
void start_daemon(machine::Cluster& cluster, sim::Engine& home, int node,
                  proc::SimThread* origin, SpawnFn spawn) {
  if (origin == nullptr || origin->process().node() == node) {
    spawn();
    return;
  }
  const sim::TimeNs now = origin->engine().now();
  const sim::TimeNs delay =
      cluster.message_delay(origin->process().node(), node, 0, now);
  home.deliver_at(now + delay, std::move(spawn));
}

}  // namespace

CommDaemon::CommDaemon(machine::Cluster& cluster, proc::ParallelJob& job, int node)
    : cluster_(cluster),
      job_(job),
      node_(node),
      engine_(cluster.engine_for_node(node)),
      inbox_(engine_) {}

void CommDaemon::start(proc::SimThread* origin) {
  DT_ASSERT(!started_, "daemon already started");
  started_ = true;
  start_daemon(cluster_, engine_, node_, origin, [this] {
    engine_.spawn(loop(), str::format("dpcl.commd.node%d", node_),
                  sim::Engine::SpawnOptions{.daemon = true});
  });
}

sim::Coro<void> CommDaemon::loop() {
  sim::Engine& engine = engine_;
  while (true) {
    Request request = co_await inbox_.recv();
    ++requests_handled_;
    co_await engine.sleep(cluster_.spec().costs.dpcl_daemon_dispatch);
    co_await execute(std::move(request));
  }
}

sim::Coro<void> CommDaemon::execute(Request request) {
  sim::Engine& engine = engine_;
  const machine::CostModel& costs = cluster_.spec().costs;

  for (const int pid : request.pids) {
    proc::SimProcess& process = job_.process(pid);
    DT_ASSERT(process.node() == node_, "daemon on node ", node_, " asked to touch pid ", pid,
              " on node ", process.node());
    switch (request.kind) {
      case Request::Kind::kAttach:
        // ptrace attach + read/analyse the executable image.
        co_await engine.sleep(costs.dpcl_connect);
        co_await engine.sleep(costs.dpcl_parse_image);
        break;
      case Request::Kind::kInstall: {
        DT_ASSERT(request.snippet != nullptr);
        const int prims = std::max(1, request.snippet->primitive_count());
        co_await engine.sleep(costs.dpcl_patch_per_probe * prims);
        process.image().install_probe(request.fn, request.where, request.snippet,
                                      request.active);
        break;
      }
      case Request::Kind::kRemoveFunction: {
        co_await engine.sleep(costs.dpcl_patch_per_probe);
        auto& img = process.image();
        for (const auto where : {image::ProbeWhere::kEntry, image::ProbeWhere::kExit}) {
          // Collect handles first: removal mutates the mini list.
          std::vector<image::ProbeHandle> handles;
          for (const auto& probe : img.probe_point(request.fn, where).minis) {
            handles.push_back(probe.handle);
          }
          for (const auto handle : handles) img.remove_probe(handle);
        }
        break;
      }
      case Request::Kind::kActivateFunction: {
        co_await engine.sleep(costs.dpcl_patch_per_probe / 4);
        auto& img = process.image();
        for (const auto where : {image::ProbeWhere::kEntry, image::ProbeWhere::kExit}) {
          for (const auto& probe : img.probe_point(request.fn, where).minis) {
            img.set_probe_active(probe.handle, request.active);
          }
        }
        break;
      }
      case Request::Kind::kSuspend:
        co_await engine.sleep(costs.dpcl_suspend_resume);
        process.suspend();
        break;
      case Request::Kind::kResume:
        co_await engine.sleep(costs.dpcl_suspend_resume);
        process.resume();
        break;
      case Request::Kind::kSetFlag:
        co_await engine.sleep(costs.dpcl_suspend_resume / 2);
        process.set_flag(request.flag, request.value);
        break;
      case Request::Kind::kExecute: {
        // Inferior RPC: the snippet runs once on a transient thread inside
        // the target's address space, with full access to its libraries
        // and memory.  The daemon waits for completion before acking.
        DT_ASSERT(request.snippet != nullptr);
        co_await engine.sleep(costs.dpcl_patch_per_probe / 2);  // stage the code
        proc::SimThread& rpc = process.add_thread(process.main_thread().cpu());
        co_await rpc.exec_snippet(*request.snippet);
        break;
      }
    }
  }

  if (request.ack != nullptr) {
    // The ack lands on the tool node's shard, where the waiter lives.
    const sim::TimeNs now = engine.now();
    const sim::TimeNs delay = cluster_.message_delay(node_, request.reply_node, kAckBytes, now);
    cluster_.engine_for_node(request.reply_node).deliver_at(now + delay, [ack = request.ack] {
      if (--ack->remaining == 0) ack->done.fire();
    });
  }
}

// ---------------------------------------------------------------------------
// SuperDaemon
// ---------------------------------------------------------------------------

SuperDaemon::SuperDaemon(machine::Cluster& cluster, int node)
    : cluster_(cluster),
      node_(node),
      engine_(cluster.engine_for_node(node)),
      inbox_(engine_) {}

void SuperDaemon::start(proc::SimThread* origin) {
  DT_ASSERT(!started_, "super daemon already started");
  started_ = true;
  start_daemon(cluster_, engine_, node_, origin, [this] {
    engine_.spawn(loop(), str::format("dpcl.superd.node%d", node_),
                  sim::Engine::SpawnOptions{.daemon = true});
  });
}

sim::Coro<void> SuperDaemon::loop() {
  sim::Engine& engine = engine_;
  while (true) {
    ConnectRequest request = co_await inbox_.recv();
    ++connections_;
    // Authenticate the user, then fork the per-user communication daemon.
    co_await engine.sleep(kAuthCost);
    co_await engine.sleep(kForkCommDaemonCost);
    if (request.ack != nullptr) {
      const sim::TimeNs now = engine.now();
      const sim::TimeNs delay =
          cluster_.message_delay(node_, request.reply_node, kAckBytes, now);
      cluster_.engine_for_node(request.reply_node)
          .deliver_at(now + delay, [ack = request.ack] {
            if (--ack->remaining == 0) ack->done.fire();
          });
    }
  }
}

}  // namespace dyntrace::dpcl
