#include "dpcl/health.hpp"

#include <algorithm>

#include "fault/report.hpp"
#include "support/strings.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::dpcl {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

HealthTracker::HealthTracker(const machine::FaultTolerance& policy,
                             fault::RunReport* report)
    : policy_(policy), report_(report) {}

void HealthTracker::transition(NodeHealth& h, int node, BreakerState to,
                               sim::TimeNs now) {
  if (h.state == to) return;
  h.state = to;
  telemetry::Registry& reg = telemetry::current();
  const telemetry::Metrics& tm = reg.metrics();
  reg.set(tm.dpcl_breaker_state, static_cast<std::int64_t>(to));
  const char* kind = nullptr;
  switch (to) {
    case BreakerState::kOpen:
      h.opened_at = now;
      ++h.opens;
      reg.add(tm.dpcl_breaker_opens);
      kind = "breaker-open";
      break;
    case BreakerState::kHalfOpen:
      ++h.probes;
      reg.add(tm.dpcl_breaker_probes);
      kind = "breaker-probe";
      break;
    case BreakerState::kClosed:
      ++h.closes;
      reg.add(tm.dpcl_breaker_closes);
      kind = "breaker-close";
      break;
  }
  if (report_ != nullptr) {
    report_->add(now, kind,
                 str::format("node=%d score=%.3f misses=%d", node, h.score,
                             h.consecutive_misses));
  }
}

void HealthTracker::record_attempt(int node, bool acked, sim::TimeNs latency,
                                   sim::TimeNs now) {
  NodeHealth& h = nodes_[node];
  double sample = 0.0;
  if (acked) {
    ++h.acks;
    h.consecutive_misses = 0;
    sample = latency <= policy_.health_latency_ref
                 ? 1.0
                 : static_cast<double>(policy_.health_latency_ref) /
                       static_cast<double>(latency);
  } else {
    ++h.misses;
    ++h.consecutive_misses;
  }
  h.score = (1.0 - policy_.health_alpha) * h.score + policy_.health_alpha * sample;
  {
    telemetry::Registry& reg = telemetry::current();
    reg.observe(reg.metrics().dpcl_health_score,
                static_cast<std::uint64_t>(h.score * 1000.0));
  }
  switch (h.state) {
    case BreakerState::kHalfOpen:
      // This attempt was the half-open probe: its outcome decides.
      transition(h, node, acked ? BreakerState::kClosed : BreakerState::kOpen, now);
      break;
    case BreakerState::kClosed:
      if (h.consecutive_misses >= policy_.breaker_failure_threshold ||
          h.score < policy_.breaker_score_floor) {
        transition(h, node, BreakerState::kOpen, now);
      }
      break;
    case BreakerState::kOpen:
      // Stragglers of a request begun before the breaker opened only feed
      // the score; re-admission goes through a half-open probe.
      break;
  }
}

HealthTracker::Admit HealthTracker::admit(int node, sim::TimeNs now) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return Admit::kNormal;
  NodeHealth& h = it->second;
  switch (h.state) {
    case BreakerState::kClosed:
      return Admit::kNormal;
    case BreakerState::kHalfOpen:
      return Admit::kProbe;
    case BreakerState::kOpen:
      if (now - h.opened_at >= policy_.breaker_cooldown) {
        transition(h, node, BreakerState::kHalfOpen, now);
        return Admit::kProbe;
      }
      ++h.skips;
      {
        telemetry::Registry& reg = telemetry::current();
        reg.add(reg.metrics().dpcl_breaker_skips);
      }
      return Admit::kSkip;
  }
  return Admit::kNormal;
}

double HealthTracker::score(int node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 1.0 : it->second.score;
}

BreakerState HealthTracker::state(int node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? BreakerState::kClosed : it->second.state;
}

const HealthTracker::NodeHealth& HealthTracker::node_health(int node) const {
  static const NodeHealth kFresh;
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? kFresh : it->second;
}

std::vector<int> HealthTracker::quarantined_nodes() const {
  std::vector<int> out;
  for (const auto& [node, h] : nodes_) {
    if (h.state != BreakerState::kClosed) out.push_back(node);
  }
  return out;
}

std::vector<int> HealthTracker::tracked_nodes() const {
  std::vector<int> out;
  out.reserve(nodes_.size());
  for (const auto& [node, h] : nodes_) out.push_back(node);
  return out;
}

}  // namespace dyntrace::dpcl
