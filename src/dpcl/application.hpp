// DpclApplication: the instrumenter-side handle to a parallel application
// (DPCL's Application/Process classes, paper §3.2).
//
// Connecting contacts the super daemon of every node hosting the target,
// which authenticates the user and forks communication daemons; those then
// attach to the local processes and parse their images.  After that,
// instrumentation operations can be broadcast to all processes.  Operations
// are *asynchronous* by default -- a message per node, arriving with
// differing delays -- with optional blocking (ack-collected) variants,
// mirroring DPCL's dual API.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dpcl/daemon.hpp"
#include "dpcl/health.hpp"
#include "proc/process.hpp"

namespace dyntrace::dpcl {

/// Message sent by a CallbackOp snippet back to the instrumenter.
struct Callback {
  std::string tag;
  int pid = 0;
};

class DpclApplication {
 public:
  /// `tool_node` is where the instrumenter runs; `super_daemons` is the
  /// cluster-wide daemon infrastructure (one per node, started).
  DpclApplication(machine::Cluster& cluster, proc::ParallelJob& job, int tool_node,
                  std::vector<SuperDaemon*> super_daemons);
  DpclApplication(const DpclApplication&) = delete;
  DpclApplication& operator=(const DpclApplication&) = delete;

  proc::ParallelJob& job() { return job_; }
  bool connected() const { return connected_; }

  /// Nodes hosting at least one target process.
  const std::vector<int>& target_nodes() const { return nodes_; }

  // --- connection -------------------------------------------------------------

  /// Authenticate with each node's super daemon, fork comm daemons, attach
  /// to and parse every process image.  Blocking.  Also wires every
  /// process's DPCL_callback channel to this application.
  sim::Coro<void> connect(proc::SimThread& tool);

  // --- instrumentation operations ----------------------------------------------
  //
  // Each broadcasts one request per target node.  With blocking=true the
  // call returns only after every daemon acknowledged completion.

  sim::Coro<void> install_probe(proc::SimThread& tool, image::FunctionId fn,
                                image::ProbeWhere where, image::SnippetPtr snippet,
                                bool activate, bool blocking);
  sim::Coro<void> remove_function_probes(proc::SimThread& tool, image::FunctionId fn,
                                         bool blocking);
  sim::Coro<void> set_function_probes_active(proc::SimThread& tool, image::FunctionId fn,
                                             bool active, bool blocking);
  sim::Coro<void> suspend_all(proc::SimThread& tool, bool blocking);
  sim::Coro<void> resume_all(proc::SimThread& tool, bool blocking);
  sim::Coro<void> set_flag_all(proc::SimThread& tool, const std::string& flag,
                               std::int64_t value, bool blocking);
  /// One-shot snippet execution in every target process (inferior RPC).
  sim::Coro<void> execute_snippet(proc::SimThread& tool, image::SnippetPtr snippet,
                                  bool blocking);

  /// Callbacks from dynamically inserted CallbackOp snippets.
  sim::Mailbox<Callback>& callbacks() { return callbacks_; }

  std::uint64_t requests_sent() const { return requests_sent_; }

  // --- fault tolerance --------------------------------------------------------

  /// Nodes abandoned after exhausting request retries (fault-tolerant mode
  /// only); their processes are marked Lost and skipped by later requests.
  const std::set<int>& lost_nodes() const { return lost_nodes_; }
  /// Pids living on lost nodes, ascending.
  std::vector<int> lost_pids() const;

  // --- gray-failure health (fault-tolerant mode only) -------------------------

  /// Per-node health scores + circuit breakers fed by the request path.
  /// Null without a fault injector.
  const HealthTracker* health() const { return health_.get(); }
  /// Marks the end of the setup phase (connect/create/instrument): from
  /// here on, broadcasts may quarantine open-breaker nodes instead of
  /// waiting out their retries.  Setup-phase requests always run the full
  /// protocol -- skipping a create or attach would wedge the job, and
  /// abandonment semantics there are unchanged.
  void set_steady_state(bool steady) { steady_state_ = steady; }
  bool steady_state() const { return steady_state_; }
  /// Nodes the *latest* broadcast quarantine-skipped or failed to probe,
  /// ascending -- the caller's signal to degrade those nodes' coverage for
  /// that operation (they are not lost; a later probe can re-admit them).
  const std::vector<int>& quarantined_last_broadcast() const {
    return quarantined_last_broadcast_;
  }
  /// Pids on currently quarantined (open/half-open breaker) nodes, ascending.
  std::vector<int> quarantined_pids() const;

 private:
  sim::Coro<void> broadcast(proc::SimThread& tool, Request prototype, bool blocking);
  /// Fault-tolerant broadcast: sequential per-node delivery with deadline,
  /// backoff retries and idempotent request ids; a node that never acks is
  /// abandoned (not retried forever, never hung on).
  sim::Coro<void> broadcast_ft(proc::SimThread& tool, Request prototype);
  /// At-least-once delivery of one request to one node; false = no ack
  /// within any deadline.  With `probe` set the request is a half-open
  /// breaker probe: a single attempt, no retries.
  sim::Coro<bool> request_node(proc::SimThread& tool, std::size_t index, Request request,
                               bool probe = false);
  void abandon_node(int node, sim::TimeNs now);
  /// The detach-resume safety net: deliver resume() to a node's processes
  /// without abandoning it, so a quarantined resume broadcast cannot leave
  /// them ptrace-suspended across a barrier (which would wedge the job).
  void force_resume_node(std::size_t index, sim::TimeNs now);

  machine::Cluster& cluster_;
  proc::ParallelJob& job_;
  int tool_node_;
  std::vector<SuperDaemon*> super_daemons_;

  std::vector<int> nodes_;                    ///< nodes hosting target processes
  std::vector<std::vector<int>> node_pids_;   ///< pids per entry of nodes_
  std::vector<std::unique_ptr<CommDaemon>> comm_daemons_;

  sim::Mailbox<Callback> callbacks_;
  bool connected_ = false;
  std::uint64_t requests_sent_ = 0;
  std::set<int> lost_nodes_;
  std::uint64_t next_request_id_ = 1;
  std::unique_ptr<HealthTracker> health_;
  bool steady_state_ = false;
  std::vector<int> quarantined_last_broadcast_;
};

}  // namespace dyntrace::dpcl
