// Per-node health scoring and circuit breaking for the DPCL request path
// (gray-failure containment, DESIGN.md §14).
//
// Crash faults are easy: a dead daemon misses every deadline and is
// abandoned after max retries.  Gray failures -- a daemon that flaps, or
// answers 1000x slower than it should -- are the common case at scale, and
// waiting out the full deadline x retry schedule for such a node on *every*
// broadcast drags the whole batch down.  The HealthTracker watches every
// request attempt (ack latency or deadline miss) and keeps, per node:
//
//   * an EWMA health score in [0, 1]: an on-time ack contributes
//     min(1, latency_ref / latency), a miss contributes 0;
//   * a consecutive-miss counter;
//   * a three-state circuit breaker:
//
//         closed --(misses >= threshold or score < floor)--> open
//         open --(cooldown elapsed, next request)--> half-open
//         half-open --(probe acked)--> closed
//         half-open --(probe missed)--> open
//
// While open, steady-state broadcasts *quarantine* the node: the request is
// skipped in O(1) and the caller records the node as degraded (the
// Dynamic→Subset→None ladder) instead of stalling its batch for up to
// deadline x (retries + 1).  Once the cooldown elapses the next broadcast
// sends a single-attempt half-open probe; an ack re-admits the node.
//
// All updates run on the tool's shard (the request path is sequential per
// application), so the tracker needs no locks and its decisions are a pure
// function of the deterministic request history -- bit-identical across
// --sim-threads.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "machine/spec.hpp"
#include "sim/time.hpp"

namespace dyntrace::fault {
class RunReport;
}

namespace dyntrace::dpcl {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* to_string(BreakerState state);

class HealthTracker {
 public:
  /// How a broadcast should treat a node right now.
  enum class Admit : std::uint8_t {
    kNormal,  ///< closed: full deadline + retry protocol
    kProbe,   ///< half-open: single-attempt probe, no retries
    kSkip,    ///< open: quarantine the node, do not send
  };

  struct NodeHealth {
    double score = 1.0;
    int consecutive_misses = 0;
    BreakerState state = BreakerState::kClosed;
    sim::TimeNs opened_at = 0;
    std::uint64_t acks = 0;
    std::uint64_t misses = 0;
    std::uint64_t probes = 0;
    std::uint64_t skips = 0;
    std::uint64_t opens = 0;
    std::uint64_t closes = 0;
  };

  /// `report` may be null; when set, breaker transitions are appended to it
  /// ("breaker-open" / "breaker-probe" / "breaker-close" entries).
  HealthTracker(const machine::FaultTolerance& policy, fault::RunReport* report);

  /// Record the outcome of one request attempt.  `latency` is send-to-ack
  /// (ignored for misses).  Drives score, miss count, and -- when the
  /// attempt is a half-open probe -- the open/closed transition.
  void record_attempt(int node, bool acked, sim::TimeNs latency, sim::TimeNs now);

  /// Gate one broadcast's request to `node`.  May transition the breaker
  /// open -> half-open when the cooldown has elapsed; records skips.
  Admit admit(int node, sim::TimeNs now);

  double score(int node) const;
  BreakerState state(int node) const;
  const NodeHealth& node_health(int node) const;
  /// Nodes whose breaker is not closed, ascending.
  std::vector<int> quarantined_nodes() const;
  /// All tracked nodes, ascending (for reporting).
  std::vector<int> tracked_nodes() const;

 private:
  void transition(NodeHealth& h, int node, BreakerState to, sim::TimeNs now);

  machine::FaultTolerance policy_;
  fault::RunReport* report_;
  std::map<int, NodeHealth> nodes_;
};

}  // namespace dyntrace::dpcl
