#include "dpcl/application.hpp"

#include <algorithm>
#include <cmath>

#include "fault/injector.hpp"
#include "support/common.hpp"
#include "support/strings.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::dpcl {

namespace {

/// Tool-side marshalling cost per broadcast request.
constexpr sim::TimeNs kMarshalCost = sim::microseconds(25);
constexpr std::int64_t kConnectBytes = 512;
constexpr std::int64_t kCallbackBytes = 96;

sim::TimeNs scale_delay(sim::TimeNs delay, double factor) {
  return static_cast<sim::TimeNs>(std::llround(static_cast<double>(delay) * factor));
}

}  // namespace

DpclApplication::DpclApplication(machine::Cluster& cluster, proc::ParallelJob& job,
                                 int tool_node, std::vector<SuperDaemon*> super_daemons)
    : cluster_(cluster),
      job_(job),
      tool_node_(tool_node),
      super_daemons_(std::move(super_daemons)),
      callbacks_(cluster.engine_for_node(tool_node)) {
  // Group target processes by node.
  for (const auto& process : job_.processes()) {
    const int node = process->node();
    auto it = std::find(nodes_.begin(), nodes_.end(), node);
    if (it == nodes_.end()) {
      nodes_.push_back(node);
      node_pids_.emplace_back();
      it = nodes_.end() - 1;
    }
    node_pids_[static_cast<std::size_t>(it - nodes_.begin())].push_back(process->pid());
  }
  if (fault::FaultInjector* injector = cluster_.fault_injector()) {
    health_ = std::make_unique<HealthTracker>(cluster_.spec().fault, &injector->report());
  }
}

sim::Coro<void> DpclApplication::connect(proc::SimThread& tool) {
  DT_EXPECT(!connected_, "application already connected");
  // The ack trigger lives on the tool's shard, where connect() executes.
  sim::Engine& tool_engine = tool.engine();

  // Phase 1: authenticate with every target node's super daemon (forks the
  // per-user communication daemons).  One message per node, acks collected.
  fault::FaultInjector* injector = cluster_.fault_injector();
  if (injector == nullptr) {
    auto auth_ack = std::make_shared<AckState>(tool_engine, static_cast<int>(nodes_.size()));
    for (const int node : nodes_) {
      DT_ASSERT(node < static_cast<int>(super_daemons_.size()));
      SuperDaemon* sd = super_daemons_[static_cast<std::size_t>(node)];
      DT_ASSERT(sd != nullptr, "no super daemon on node ", node);
      co_await tool.compute(kMarshalCost);
      const sim::TimeNs now = tool_engine.now();
      const sim::TimeNs delay = cluster_.message_delay(tool_node_, node, kConnectBytes, now);
      sd->engine().deliver_at(now + delay, [sd, auth_ack, this] {
        sd->inbox().put(ConnectRequest{"dynprof-user", auth_ack, tool_node_});
      });
    }
    co_await auth_ack->done.wait();
  } else {
    // Fault-tolerant phase 1: per-node deadline + retries; a node whose
    // super daemon never answers is abandoned before attach.
    const machine::FaultTolerance& ft = cluster_.spec().fault;
    for (const int node : nodes_) {
      DT_ASSERT(node < static_cast<int>(super_daemons_.size()));
      SuperDaemon* sd = super_daemons_[static_cast<std::size_t>(node)];
      DT_ASSERT(sd != nullptr, "no super daemon on node ", node);
      bool acked = false;
      for (int attempt = 0; attempt <= ft.request_max_retries && !acked; ++attempt) {
        if (attempt > 0) {
          telemetry::Registry& reg = telemetry::current();
          reg.add(reg.metrics().dpcl_retries);
        }
        auto ack = std::make_shared<AckState>(tool_engine, 1);
        co_await tool.compute(kMarshalCost);
        const sim::TimeNs now = tool_engine.now();
        sim::TimeNs delay = cluster_.message_delay(tool_node_, node, kConnectBytes, now);
        const fault::MessageFate fate =
            injector->message_fate(fault::Channel::kDaemon, tool_node_, node, now);
        const int copies = fate.drop ? 0 : 1 + fate.duplicates;
        delay = scale_delay(delay, fate.delay_factor);
        for (int c = 0; c < copies; ++c) {
          sd->engine().deliver_at(now + delay, [sd, ack, this] {
            sd->inbox().put(ConnectRequest{"dynprof-user", ack, tool_node_});
          });
        }
        acked = co_await ack->done.wait_for(ft.request_deadline);
        if (!acked && attempt < ft.request_max_retries) {
          co_await tool_engine.sleep(ft.retry_backoff_base << attempt);
        }
      }
      if (!acked) abandon_node(node, tool_engine.now());
    }
  }

  // Phase 2: the freshly forked comm daemons attach to their local
  // processes and parse the images.
  for (const int node : nodes_) {
    comm_daemons_.push_back(std::make_unique<CommDaemon>(cluster_, job_, node));
    comm_daemons_.back()->start(&tool);
  }
  connected_ = true;  // daemons exist; attach is the first broadcast
  Request attach;
  attach.kind = Request::Kind::kAttach;
  co_await broadcast(tool, std::move(attach), /*blocking=*/true);

  // Phase 3: wire the DPCL_callback channel of every target process.  The
  // sink runs on the *process's* shard; the callback message crosses to the
  // tool's shard with daemon-hop + wire latency.
  for (const auto& process : job_.processes()) {
    proc::SimProcess* p = process.get();
    p->set_callback_sink([this, p](const std::string& tag, int pid) {
      const sim::TimeNs now = p->engine().now();
      const sim::TimeNs daemon_hop = cluster_.spec().costs.dpcl_daemon_dispatch;
      sim::TimeNs delay =
          daemon_hop + cluster_.message_delay(p->node(), tool_node_, kCallbackBytes, now);
      int copies = 1;
      if (fault::FaultInjector* inj = cluster_.fault_injector()) {
        // Callbacks route through the local daemon: a dead daemon forwards
        // nothing, and the wire leg is subject to the daemon channel's fate.
        if (!inj->daemon_alive(p->node(), now)) return;
        const fault::MessageFate fate =
            inj->message_fate(fault::Channel::kDaemon, p->node(), tool_node_, now);
        copies = fate.drop ? 0 : 1 + fate.duplicates;
        delay = scale_delay(delay, fate.delay_factor);
      }
      for (int c = 0; c < copies; ++c) {
        cluster_.engine_for_node(tool_node_)
            .deliver_at(now + delay, [this, tag, pid] { callbacks_.put({tag, pid}); });
      }
    });
  }
}

sim::Coro<void> DpclApplication::broadcast(proc::SimThread& tool, Request prototype,
                                           bool blocking) {
  DT_EXPECT(connected_, "DPCL operation before connect()");
  if (cluster_.fault_injector() != nullptr) {
    // Fault-tolerant mode makes every broadcast reliable (per-node acks
    // with retries); non-blocking semantics would have no way to detect a
    // dead daemon.
    co_await broadcast_ft(tool, std::move(prototype));
    co_return;
  }
  sim::Engine& tool_engine = tool.engine();
  std::shared_ptr<AckState> ack;
  if (blocking) {
    ack = std::make_shared<AckState>(tool_engine, static_cast<int>(nodes_.size()));
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Request request = prototype;
    request.pids = node_pids_[i];
    request.ack = ack;
    request.reply_node = tool_node_;
    co_await tool.compute(kMarshalCost);
    const sim::TimeNs now = tool_engine.now();
    const sim::TimeNs delay =
        cluster_.message_delay(tool_node_, nodes_[i], request_bytes(request), now);
    CommDaemon* daemon = comm_daemons_[i].get();
    daemon->engine().deliver_at(now + delay, [daemon, request = std::move(request)]() mutable {
      daemon->inbox().put(std::move(request));
    });
    ++requests_sent_;
    telemetry::Registry& reg = telemetry::current();
    reg.add(reg.metrics().dpcl_requests);
  }
  if (ack != nullptr) co_await ack->done.wait();
}

sim::Coro<void> DpclApplication::broadcast_ft(proc::SimThread& tool, Request prototype) {
  fault::FaultInjector* injector = cluster_.fault_injector();
  quarantined_last_broadcast_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const int node = nodes_[i];
    if (lost_nodes_.count(node) != 0) continue;
    // Circuit breaker (steady state only; setup-phase requests always run
    // the full protocol -- see set_steady_state).
    HealthTracker::Admit admit = HealthTracker::Admit::kNormal;
    if (steady_state_ && health_ != nullptr) admit = health_->admit(node, tool.engine().now());
    if (admit == HealthTracker::Admit::kSkip) {
      quarantined_last_broadcast_.push_back(node);
      // Quarantine sheds instrumentation work, never the ability to
      // un-wedge targets: a resume skipped between a delivered suspend and
      // the next barrier would deadlock the whole job on the quarantined
      // node's ranks.  Model the DPCL library's local detach fallback --
      // the kernel resumes a tracee whose tracer lets go -- exactly as
      // abandon_node does for dead daemons.
      if (prototype.kind == Request::Kind::kResume) {
        force_resume_node(i, tool.engine().now());
      }
      continue;
    }
    Request request = prototype;
    request.pids = node_pids_[i];
    request.reply_node = tool_node_;
    request.request_id = next_request_id_++;
    const bool acked = co_await request_node(tool, i, std::move(request),
                                             admit == HealthTracker::Admit::kProbe);
    if (acked) continue;
    // A failed probe re-opened the breaker (not a full retry exhaustion);
    // the node stays quarantined, not abandoned.  Likewise a gray-prone
    // node (named by a flap/degrade action) that exhausts its retries is
    // quarantined -- its daemon is sick, not gone, and a later half-open
    // probe can re-admit it.  Everything else keeps the crash-fault
    // semantics: exhaustion abandons the node for good.
    if (admit == HealthTracker::Admit::kProbe ||
        (steady_state_ && injector->daemon_gray_prone(node))) {
      quarantined_last_broadcast_.push_back(node);
      // Same safety net as the skip path: a failed resume leaves the
      // node's processes ptrace-suspended, so force the detach-resume
      // (idempotent if the sick daemon eventually works its backlog off).
      if (prototype.kind == Request::Kind::kResume) {
        force_resume_node(i, tool.engine().now());
      }
    } else {
      abandon_node(node, tool.engine().now());
    }
  }
}

void DpclApplication::force_resume_node(std::size_t index, sim::TimeNs now) {
  const int node = nodes_[index];
  const sim::TimeNs delay = cluster_.message_delay(tool_node_, node, 0, now);
  for (const int pid : node_pids_[index]) {
    proc::SimProcess& process = job_.process(pid);
    cluster_.engine_for_node(node).deliver_at(now + delay, [&process] { process.resume(); });
  }
}

sim::Coro<bool> DpclApplication::request_node(proc::SimThread& tool, std::size_t index,
                                              Request request, bool probe) {
  fault::FaultInjector* injector = cluster_.fault_injector();
  DT_ASSERT(injector != nullptr);
  const machine::FaultTolerance& ft = cluster_.spec().fault;
  sim::Engine& tool_engine = tool.engine();
  const int node = nodes_[index];
  CommDaemon* daemon = comm_daemons_[index].get();

  // A half-open probe gets exactly one attempt: its job is to answer "has
  // the node recovered?" cheaply, not to push the request through.
  const int max_retries = probe ? 0 : ft.request_max_retries;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    // A fresh single-node AckState per attempt: a late or duplicated ack of
    // an earlier attempt decrements an already-fired (abandoned) state and
    // can never complete a later one early.
    auto ack = std::make_shared<AckState>(tool_engine, 1);
    request.ack = ack;
    co_await tool.compute(kMarshalCost);
    const sim::TimeNs now = tool_engine.now();
    sim::TimeNs delay = cluster_.message_delay(tool_node_, node, request_bytes(request), now);
    const fault::MessageFate fate =
        injector->message_fate(fault::Channel::kDaemon, tool_node_, node, now);
    const int copies = fate.drop ? 0 : 1 + fate.duplicates;
    delay = scale_delay(delay, fate.delay_factor);
    for (int c = 0; c < copies; ++c) {
      Request copy = request;
      daemon->engine().deliver_at(now + delay, [daemon, copy = std::move(copy)]() mutable {
        daemon->inbox().put(std::move(copy));
      });
    }
    ++requests_sent_;
    {
      telemetry::Registry& reg = telemetry::current();
      reg.add(reg.metrics().dpcl_requests);
      if (attempt > 0) reg.add(reg.metrics().dpcl_retries);
    }
    const sim::TimeNs sent = now;
    const bool acked = co_await ack->done.wait_for(ft.request_deadline);
    if (health_ != nullptr) {
      health_->record_attempt(node, acked, tool_engine.now() - sent, tool_engine.now());
    }
    if (acked) co_return true;
    if (attempt < max_retries) {
      co_await tool_engine.sleep(ft.retry_backoff_base << attempt);
    }
  }
  co_return false;
}

void DpclApplication::abandon_node(int node, sim::TimeNs now) {
  if (!lost_nodes_.insert(node).second) return;
  {
    telemetry::Registry& reg = telemetry::current();
    reg.add(reg.metrics().dpcl_abandoned_nodes);
  }
  std::vector<int> ranks;
  const auto it = std::find(nodes_.begin(), nodes_.end(), node);
  if (it != nodes_.end()) {
    for (const int pid : node_pids_[static_cast<std::size_t>(it - nodes_.begin())]) {
      job_.process(pid).mark_lost();
      ranks.push_back(pid);
    }
  }
  // A dead daemon cannot resume targets it had ptrace-suspended, but the
  // kernel does: a tracee continues when its tracer dies.  Model that
  // detach, so a daemon lost between a patch cycle's suspend and resume
  // leaves the node's processes running (uninstrumented), not wedged.
  const sim::TimeNs delay = cluster_.message_delay(tool_node_, node, 0, now);
  for (const int pid : ranks) {
    proc::SimProcess& process = job_.process(pid);
    cluster_.engine_for_node(node).deliver_at(now + delay, [&process] { process.resume(); });
  }
  fault::FaultInjector* injector = cluster_.fault_injector();
  DT_ASSERT(injector != nullptr);
  injector->report().add(now, "daemon-lost", str::format("node=%d", node), ranks);
}

std::vector<int> DpclApplication::quarantined_pids() const {
  std::vector<int> out;
  if (health_ == nullptr) return out;
  for (const int node : health_->quarantined_nodes()) {
    if (lost_nodes_.count(node) != 0) continue;
    const auto it = std::find(nodes_.begin(), nodes_.end(), node);
    if (it == nodes_.end()) continue;
    const auto& pids = node_pids_[static_cast<std::size_t>(it - nodes_.begin())];
    out.insert(out.end(), pids.begin(), pids.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> DpclApplication::lost_pids() const {
  std::vector<int> out;
  for (const int node : lost_nodes_) {
    const auto it = std::find(nodes_.begin(), nodes_.end(), node);
    if (it == nodes_.end()) continue;
    const auto& pids = node_pids_[static_cast<std::size_t>(it - nodes_.begin())];
    out.insert(out.end(), pids.begin(), pids.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

sim::Coro<void> DpclApplication::install_probe(proc::SimThread& tool, image::FunctionId fn,
                                               image::ProbeWhere where,
                                               image::SnippetPtr snippet, bool activate,
                                               bool blocking) {
  Request request;
  request.kind = Request::Kind::kInstall;
  request.fn = fn;
  request.where = where;
  request.snippet = std::move(snippet);
  request.active = activate;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::remove_function_probes(proc::SimThread& tool,
                                                        image::FunctionId fn, bool blocking) {
  Request request;
  request.kind = Request::Kind::kRemoveFunction;
  request.fn = fn;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::set_function_probes_active(proc::SimThread& tool,
                                                            image::FunctionId fn, bool active,
                                                            bool blocking) {
  Request request;
  request.kind = Request::Kind::kActivateFunction;
  request.fn = fn;
  request.active = active;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::suspend_all(proc::SimThread& tool, bool blocking) {
  Request request;
  request.kind = Request::Kind::kSuspend;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::resume_all(proc::SimThread& tool, bool blocking) {
  Request request;
  request.kind = Request::Kind::kResume;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::set_flag_all(proc::SimThread& tool, const std::string& flag,
                                              std::int64_t value, bool blocking) {
  Request request;
  request.kind = Request::Kind::kSetFlag;
  request.flag = flag;
  request.value = value;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::execute_snippet(proc::SimThread& tool,
                                                 image::SnippetPtr snippet, bool blocking) {
  Request request;
  request.kind = Request::Kind::kExecute;
  request.snippet = std::move(snippet);
  co_await broadcast(tool, std::move(request), blocking);
}

}  // namespace dyntrace::dpcl
