#include "dpcl/application.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace dyntrace::dpcl {

namespace {

/// Tool-side marshalling cost per broadcast request.
constexpr sim::TimeNs kMarshalCost = sim::microseconds(25);
constexpr std::int64_t kConnectBytes = 512;
constexpr std::int64_t kCallbackBytes = 96;

}  // namespace

DpclApplication::DpclApplication(machine::Cluster& cluster, proc::ParallelJob& job,
                                 int tool_node, std::vector<SuperDaemon*> super_daemons)
    : cluster_(cluster),
      job_(job),
      tool_node_(tool_node),
      super_daemons_(std::move(super_daemons)),
      callbacks_(cluster.engine_for_node(tool_node)) {
  // Group target processes by node.
  for (const auto& process : job_.processes()) {
    const int node = process->node();
    auto it = std::find(nodes_.begin(), nodes_.end(), node);
    if (it == nodes_.end()) {
      nodes_.push_back(node);
      node_pids_.emplace_back();
      it = nodes_.end() - 1;
    }
    node_pids_[static_cast<std::size_t>(it - nodes_.begin())].push_back(process->pid());
  }
}

sim::Coro<void> DpclApplication::connect(proc::SimThread& tool) {
  DT_EXPECT(!connected_, "application already connected");
  // The ack trigger lives on the tool's shard, where connect() executes.
  sim::Engine& tool_engine = tool.engine();

  // Phase 1: authenticate with every target node's super daemon (forks the
  // per-user communication daemons).  One message per node, acks collected.
  auto auth_ack = std::make_shared<AckState>(tool_engine, static_cast<int>(nodes_.size()));
  for (const int node : nodes_) {
    DT_ASSERT(node < static_cast<int>(super_daemons_.size()));
    SuperDaemon* sd = super_daemons_[static_cast<std::size_t>(node)];
    DT_ASSERT(sd != nullptr, "no super daemon on node ", node);
    co_await tool.compute(kMarshalCost);
    const sim::TimeNs now = tool_engine.now();
    const sim::TimeNs delay = cluster_.message_delay(tool_node_, node, kConnectBytes, now);
    sd->engine().deliver_at(now + delay, [sd, auth_ack, this] {
      sd->inbox().put(ConnectRequest{"dynprof-user", auth_ack, tool_node_});
    });
  }
  co_await auth_ack->done.wait();

  // Phase 2: the freshly forked comm daemons attach to their local
  // processes and parse the images.
  for (const int node : nodes_) {
    comm_daemons_.push_back(std::make_unique<CommDaemon>(cluster_, job_, node));
    comm_daemons_.back()->start(&tool);
  }
  connected_ = true;  // daemons exist; attach is the first broadcast
  Request attach;
  attach.kind = Request::Kind::kAttach;
  co_await broadcast(tool, std::move(attach), /*blocking=*/true);

  // Phase 3: wire the DPCL_callback channel of every target process.  The
  // sink runs on the *process's* shard; the callback message crosses to the
  // tool's shard with daemon-hop + wire latency.
  for (const auto& process : job_.processes()) {
    proc::SimProcess* p = process.get();
    p->set_callback_sink([this, p](const std::string& tag, int pid) {
      const sim::TimeNs now = p->engine().now();
      const sim::TimeNs daemon_hop = cluster_.spec().costs.dpcl_daemon_dispatch;
      const sim::TimeNs delay =
          daemon_hop + cluster_.message_delay(p->node(), tool_node_, kCallbackBytes, now);
      cluster_.engine_for_node(tool_node_)
          .deliver_at(now + delay, [this, tag, pid] { callbacks_.put({tag, pid}); });
    });
  }
}

sim::Coro<void> DpclApplication::broadcast(proc::SimThread& tool, Request prototype,
                                           bool blocking) {
  DT_EXPECT(connected_, "DPCL operation before connect()");
  sim::Engine& tool_engine = tool.engine();
  std::shared_ptr<AckState> ack;
  if (blocking) {
    ack = std::make_shared<AckState>(tool_engine, static_cast<int>(nodes_.size()));
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Request request = prototype;
    request.pids = node_pids_[i];
    request.ack = ack;
    request.reply_node = tool_node_;
    co_await tool.compute(kMarshalCost);
    const sim::TimeNs now = tool_engine.now();
    const sim::TimeNs delay =
        cluster_.message_delay(tool_node_, nodes_[i], request_bytes(request), now);
    CommDaemon* daemon = comm_daemons_[i].get();
    daemon->engine().deliver_at(now + delay, [daemon, request = std::move(request)]() mutable {
      daemon->inbox().put(std::move(request));
    });
    ++requests_sent_;
  }
  if (ack != nullptr) co_await ack->done.wait();
}

sim::Coro<void> DpclApplication::install_probe(proc::SimThread& tool, image::FunctionId fn,
                                               image::ProbeWhere where,
                                               image::SnippetPtr snippet, bool activate,
                                               bool blocking) {
  Request request;
  request.kind = Request::Kind::kInstall;
  request.fn = fn;
  request.where = where;
  request.snippet = std::move(snippet);
  request.active = activate;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::remove_function_probes(proc::SimThread& tool,
                                                        image::FunctionId fn, bool blocking) {
  Request request;
  request.kind = Request::Kind::kRemoveFunction;
  request.fn = fn;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::set_function_probes_active(proc::SimThread& tool,
                                                            image::FunctionId fn, bool active,
                                                            bool blocking) {
  Request request;
  request.kind = Request::Kind::kActivateFunction;
  request.fn = fn;
  request.active = active;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::suspend_all(proc::SimThread& tool, bool blocking) {
  Request request;
  request.kind = Request::Kind::kSuspend;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::resume_all(proc::SimThread& tool, bool blocking) {
  Request request;
  request.kind = Request::Kind::kResume;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::set_flag_all(proc::SimThread& tool, const std::string& flag,
                                              std::int64_t value, bool blocking) {
  Request request;
  request.kind = Request::Kind::kSetFlag;
  request.flag = flag;
  request.value = value;
  co_await broadcast(tool, std::move(request), blocking);
}

sim::Coro<void> DpclApplication::execute_snippet(proc::SimThread& tool,
                                                 image::SnippetPtr snippet, bool blocking) {
  Request request;
  request.kind = Request::Kind::kExecute;
  request.snippet = std::move(snippet);
  co_await broadcast(tool, std::move(request), blocking);
}

}  // namespace dyntrace::dpcl
