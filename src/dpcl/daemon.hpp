// DPCL daemon infrastructure (paper §3.2, Figure 5).
//
// One SuperDaemon runs on every node: it authenticates connecting users and
// forks one CommDaemon per user connection.  CommDaemons attach to the
// local processes of the target application and execute instrumentation
// requests (patch, activate, suspend, resume, poke memory).
//
// Requests travel as messages over the simulated interconnect with
// per-message jitter, so daemons on different nodes receive them at
// *different times* -- the asynchrony whose consequences (§3.4, Figure 6)
// dynprof's initialization protocol must handle.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "image/image.hpp"
#include "proc/job.hpp"
#include "sim/mailbox.hpp"
#include "sim/sync.hpp"

namespace dyntrace::dpcl {

/// Completion tracking for blocking requests: fires after every contacted
/// daemon has acknowledged.  `failed` counts per-process failures the
/// daemons reported (e.g. a target that exited before dispatch) -- the
/// request completed, but not everywhere.
struct AckState {
  AckState(sim::Engine& engine, int outstanding) : remaining(outstanding), done(engine) {}
  int remaining;
  int failed = 0;
  sim::Trigger done;
};

struct Request {
  enum class Kind : std::uint8_t {
    kAttach,            ///< attach + parse image of each local process
    kInstall,           ///< install a probe (fn/where/snippet/active)
    kRemoveFunction,    ///< remove all probes on a function
    kActivateFunction,  ///< (de)activate all probes on a function
    kSuspend,
    kResume,
    kSetFlag,           ///< poke a named memory word in each process
    kExecute,           ///< one-shot snippet execution ("inferior RPC"):
                        ///< run the snippet once in each target process,
                        ///< without installing anything
  };

  Kind kind = Kind::kSuspend;
  std::vector<int> pids;  ///< job pids local to the daemon's node

  image::FunctionId fn = image::kInvalidFunction;
  image::ProbeWhere where = image::ProbeWhere::kEntry;
  image::SnippetPtr snippet;
  bool active = true;

  std::string flag;
  std::int64_t value = 0;

  /// Nonzero in fault-tolerant mode: retries of one logical request carry
  /// the same id, and the daemon's dedup table re-acks without
  /// re-executing (exactly-once execution under at-least-once delivery).
  std::uint64_t request_id = 0;

  std::shared_ptr<AckState> ack;  ///< null for fire-and-forget requests
  int reply_node = 0;             ///< where the ack message goes
};

/// Estimated wire size of a request message (affects transfer time).
std::int64_t request_bytes(const Request& request);

class CommDaemon {
 public:
  CommDaemon(machine::Cluster& cluster, proc::ParallelJob& job, int node);
  CommDaemon(const CommDaemon&) = delete;
  CommDaemon& operator=(const CommDaemon&) = delete;

  int node() const { return node_; }
  /// The daemon's home engine: the shard owning its node.
  sim::Engine& engine() { return engine_; }
  sim::Mailbox<Request>& inbox() { return inbox_; }

  /// Spawn the request-processing loop (an engine daemon process).  Started
  /// from a simulated thread on another node (the tool forking daemons
  /// mid-run), pass it as `origin`: the loop then begins after one
  /// zero-byte fork message from the origin node -- which also keeps the
  /// cross-shard spawn beyond the conservative lookahead.  Requests
  /// arriving before the loop is up simply wait in the inbox.
  void start(proc::SimThread* origin = nullptr);

  std::uint64_t requests_handled() const { return requests_handled_; }

  /// Cap on the dedup table (kDedupCapacity by default).  A long-lived
  /// service issues requests forever, so completed entries are evicted
  /// oldest-id-first once the table fills -- request ids are allocated
  /// monotonically, so the smallest id is always the oldest entry, and
  /// the eviction order is identical on every run.  An evicted id that is
  /// replayed later is re-executed (and re-acked) as a fresh request; the
  /// capacity only needs to cover the retry horizon of in-flight requests,
  /// not the daemon's lifetime.  Tests shrink this to force evictions.
  void set_dedup_capacity(std::size_t capacity) { dedup_capacity_ = capacity; }
  std::size_t dedup_capacity() const { return dedup_capacity_; }
  std::size_t dedup_size() const { return completed_.size(); }

  static constexpr std::size_t kDedupCapacity = 4096;

 private:
  sim::Coro<void> loop();
  /// Run the request against every local pid; returns how many targets
  /// failed (e.g. exited before dispatch).  `degrade` stretches every
  /// per-target cost (degrade-daemon gray-failure action; 1.0 normally).
  sim::Coro<int> execute(const Request& request, double degrade);
  void send_ack(const Request& request, int failures);

  machine::Cluster& cluster_;
  proc::ParallelJob& job_;
  int node_;
  sim::Engine& engine_;
  sim::Mailbox<Request> inbox_;
  /// Dedup table (fault-tolerant mode): request id -> failure count of the
  /// completed execution, so a retried request is re-acked, not re-run.
  /// Bounded by dedup_capacity_ (oldest ids evicted first).
  std::map<std::uint64_t, int> completed_;
  std::size_t dedup_capacity_ = kDedupCapacity;
  std::uint64_t requests_handled_ = 0;
  bool started_ = false;
};

/// Connection request handled by a node's super daemon.
struct ConnectRequest {
  std::string user;
  std::shared_ptr<AckState> ack;
  int reply_node = 0;
};

class SuperDaemon {
 public:
  SuperDaemon(machine::Cluster& cluster, int node);
  SuperDaemon(const SuperDaemon&) = delete;
  SuperDaemon& operator=(const SuperDaemon&) = delete;

  int node() const { return node_; }
  sim::Engine& engine() { return engine_; }
  sim::Mailbox<ConnectRequest>& inbox() { return inbox_; }
  /// See CommDaemon::start for the `origin` contract.
  void start(proc::SimThread* origin = nullptr);

  std::uint64_t connections_served() const { return connections_; }

 private:
  sim::Coro<void> loop();

  machine::Cluster& cluster_;
  int node_;
  sim::Engine& engine_;
  sim::Mailbox<ConnectRequest> inbox_;
  std::uint64_t connections_ = 0;
  bool started_ = false;
};

}  // namespace dyntrace::dpcl
