// ReplayApp: a parsed ReplayTrace presented as an asci::AppSpec, so a
// recorded MPI call stream runs through the exact pipeline the synthetic
// kernels use -- every policy, fault plan, service session and bench works
// on a replayed trace unchanged.
//
// The spec is pinned to the trace: min_procs == max_procs == ranks, the
// symbol inventory is the trace's `call` functions (module "replay") plus
// the MPI runtime entries, and subset/dynamic_list come from the `subset`
// directive (default: every call function).  The body coroutine walks the
// rank's event stream with a time cursor -- gaps replay as raw compute,
// `call` events go through the instrumentation protocol (leaf/leaf_repeat),
// `sync` offers a safe point, and MPI verbs re-execute against the machine
// model so their cost is simulated, not transcribed.
#pragma once

#include <memory>
#include <string>

#include "asci/app.hpp"
#include "replay/trace.hpp"

namespace dyntrace::replay {

class ReplayApp {
 public:
  explicit ReplayApp(ReplayTrace trace);

  /// Valid for the lifetime of this ReplayApp.
  const asci::AppSpec& spec() const { return spec_; }
  const ReplayTrace& trace() const { return *trace_; }

 private:
  std::shared_ptr<const ReplayTrace> trace_;
  asci::AppSpec spec_;
};

/// Load a trace file and wrap it (CLI / test convenience).
std::shared_ptr<ReplayApp> load_app(const std::string& path, ParseOptions options = {});

}  // namespace dyntrace::replay
