// Text trace ingestion: recorded MPI call streams replayed as first-class
// instrumented applications (ROADMAP item 4; docs/TRACE_REPLAY.md).
//
// The vocabulary is the DUMPI `dumpi_function` enum (the de-facto trace
// interchange list; SNIPPETS.md §3) spelled with the MPI_* names.  A trace
// is one directive header plus one line per event:
//
//     ranks 4                      # required, before any event
//     app ring                     # optional app name (default "replay")
//     subset ring_compute          # optional Subset/Dynamic function list
//     0 0ms call fn=ring_compute work=2ms
//     0 2ms MPI_Send dst=1 tag=7 bytes=4096 dur=30us
//     1 0ms MPI_Recv src=0 tag=7
//     2 1ms MPI_Barrier
//     3 5ms sync                   # safe-point offer (VT_confsync cadence)
//
// Event lines are `<rank> <timestamp> <verb> [key=value ...]`; timestamps
// are the *recorded* times relative to the rank's MPI_Init exit, must be
// non-decreasing per rank, and accept the ns/us/ms/s suffixes the fault
// plans use.  The gap between a rank's cursor and the next event's
// timestamp replays as raw compute; `call` advances the cursor by
// count x work, and MPI verbs by their optional recorded `dur=` (the
// *simulated* cost of the MPI call itself is re-derived from the machine
// model, which is the point of replaying rather than re-plotting).
//
// Unsupported-verb policy: a verb in the DUMPI vocabulary but outside the
// replayed subset (MPI_Ssend, MPI_Type_commit, ...) is skipped and counted
// (ReplayTrace::skipped_events) by default, or rejected under
// ParseOptions::strict; a token that is not in the vocabulary at all is
// always a parse error.
//
// Well-formedness is checked at parse time so replays cannot deadlock:
// point-to-point sends and receives must pair up exactly per
// (src, dst, tag), every request id must be waited exactly once, and all
// ranks must record identical collective/sync sequences.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace dyntrace::replay {

/// The replayed subset of the DUMPI vocabulary, plus the two local verbs
/// (`call` compute phases and `sync` safe-point offers).
enum class Verb : std::uint8_t {
  kCall,      ///< compute phase attributed to a named function
  kSync,      ///< safe-point offer (AppContext::safe_point)
  kSend,      ///< MPI_Send
  kRecv,      ///< MPI_Recv
  kIsend,     ///< MPI_Isend (req= handle)
  kIrecv,     ///< MPI_Irecv (req= handle)
  kWait,      ///< MPI_Wait (req= handle)
  kWaitall,   ///< MPI_Waitall (req= comma-separated handles)
  kSendrecv,  ///< MPI_Sendrecv
  kBarrier,   ///< MPI_Barrier
  kBcast,     ///< MPI_Bcast
  kReduce,    ///< MPI_Reduce
  kAllreduce, ///< MPI_Allreduce
  kGather,    ///< MPI_Gather
  kScatter,   ///< MPI_Scatter
  kAlltoall,  ///< MPI_Alltoall
};

const char* to_string(Verb verb);

/// True when `name` is in the DUMPI `dumpi_function` vocabulary (whether
/// replayed or skip-counted).  `call` / `sync` are not MPI names and are
/// handled separately.
bool in_dumpi_vocabulary(std::string_view name);

struct ReplayEvent {
  Verb verb = Verb::kCall;
  sim::TimeNs at = 0;    ///< recorded timestamp (relative to MPI_Init exit)
  sim::TimeNs dur = 0;   ///< recorded duration (cursor advance; MPI verbs)
  std::string fn;        ///< kCall: function name
  sim::TimeNs work = 0;  ///< kCall: per-call work
  std::int64_t count = 1;///< kCall: calls charged (leaf_repeat when > 1)
  int peer = -1;         ///< dst (sends) / src (recvs) / root (collectives)
  int src = -1;          ///< kSendrecv: receive-side source
  int tag = 0;
  std::int64_t bytes = 0;
  std::vector<std::string> reqs;  ///< request handles (isend/irecv/wait/waitall)
};

struct ParseOptions {
  /// Reject recognized-but-unreplayed DUMPI verbs instead of skip-counting.
  bool strict = false;
};

struct ReplayTrace {
  std::string app_name = "replay";
  int ranks = 0;
  /// Subset/Dynamic list: the `subset` directive, or every `call` function
  /// when the directive is absent.
  std::vector<std::string> subset;
  /// Unique `call` function names in first-appearance order (the replayed
  /// app's user-function inventory).
  std::vector<std::string> call_functions;
  /// Per-rank event streams, each non-decreasing in `at`.
  std::vector<std::vector<ReplayEvent>> events;
  /// Events skipped under the non-strict unsupported-verb policy, and the
  /// distinct verb names involved (first-appearance order).
  std::uint64_t skipped_events = 0;
  std::vector<std::string> skipped_verbs;

  /// Parse the text format; throws dyntrace::Error naming `origin` and the
  /// line on malformed input (see the well-formedness rules above).
  static ReplayTrace parse(std::string_view text, const std::string& origin = "<trace>",
                           ParseOptions options = {});

  /// Load a trace file from disk.
  static ReplayTrace load(const std::string& path, ParseOptions options = {});
};

}  // namespace dyntrace::replay
