#include "replay/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>

#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::replay {

namespace {

/// The dumpi_function enum's MPI-1 names (SNIPPETS.md §3): the vocabulary.
/// Everything here parses; names outside kReplayedVerbs skip-count (or
/// reject under strict).
const char* const kDumpiNames[] = {
    "MPI_Send", "MPI_Recv", "MPI_Get_count", "MPI_Bsend", "MPI_Ssend", "MPI_Rsend",
    "MPI_Buffer_attach", "MPI_Buffer_detach", "MPI_Isend", "MPI_Ibsend", "MPI_Issend",
    "MPI_Irsend", "MPI_Irecv", "MPI_Wait", "MPI_Test", "MPI_Request_free",
    "MPI_Waitany", "MPI_Testany", "MPI_Waitall", "MPI_Testall", "MPI_Waitsome",
    "MPI_Testsome", "MPI_Iprobe", "MPI_Probe", "MPI_Cancel", "MPI_Test_cancelled",
    "MPI_Send_init", "MPI_Bsend_init", "MPI_Ssend_init", "MPI_Rsend_init",
    "MPI_Recv_init", "MPI_Start", "MPI_Startall", "MPI_Sendrecv",
    "MPI_Sendrecv_replace", "MPI_Type_contiguous", "MPI_Type_vector",
    "MPI_Type_hvector", "MPI_Type_indexed", "MPI_Type_hindexed", "MPI_Type_struct",
    "MPI_Address", "MPI_Type_extent", "MPI_Type_size", "MPI_Type_lb", "MPI_Type_ub",
    "MPI_Type_commit", "MPI_Type_free", "MPI_Get_elements", "MPI_Pack", "MPI_Unpack",
    "MPI_Pack_size", "MPI_Barrier", "MPI_Bcast", "MPI_Gather", "MPI_Gatherv",
    "MPI_Scatter", "MPI_Scatterv", "MPI_Allgather", "MPI_Allgatherv", "MPI_Alltoall",
    "MPI_Alltoallv", "MPI_Reduce", "MPI_Op_create", "MPI_Op_free", "MPI_Allreduce",
    "MPI_Reduce_scatter", "MPI_Scan", "MPI_Group_size", "MPI_Group_rank",
    "MPI_Group_translate_ranks", "MPI_Group_compare", "MPI_Comm_group",
    "MPI_Group_union", "MPI_Group_intersection", "MPI_Group_difference",
    "MPI_Group_incl", "MPI_Group_excl", "MPI_Group_range_incl", "MPI_Group_range_excl",
    "MPI_Group_free", "MPI_Comm_size", "MPI_Comm_rank", "MPI_Comm_compare",
    "MPI_Comm_dup", "MPI_Comm_create", "MPI_Comm_split", "MPI_Comm_free",
    "MPI_Comm_test_inter", "MPI_Comm_remote_size", "MPI_Comm_remote_group",
    "MPI_Intercomm_create", "MPI_Intercomm_merge", "MPI_Keyval_create",
    "MPI_Keyval_free", "MPI_Attr_put", "MPI_Attr_get", "MPI_Attr_delete",
    "MPI_Topo_test", "MPI_Cart_create", "MPI_Dims_create", "MPI_Graph_create",
    "MPI_Graphdims_get", "MPI_Graph_get", "MPI_Cart_rank", "MPI_Cart_coords",
    "MPI_Graph_neighbors_count", "MPI_Graph_neighbors", "MPI_Cart_shift",
    "MPI_Cart_sub", "MPI_Cart_map", "MPI_Graph_map", "MPI_Get_processor_name",
    "MPI_Get_version", "MPI_Errhandler_create", "MPI_Errhandler_set",
    "MPI_Errhandler_get", "MPI_Errhandler_free", "MPI_Error_string",
    "MPI_Error_class", "MPI_Wtime", "MPI_Wtick", "MPI_Init", "MPI_Finalize",
    "MPI_Initialized", "MPI_Abort", "MPI_Pcontrol",
};

struct VerbName {
  const char* name;
  Verb verb;
};

/// The replayed subset of the vocabulary, plus the two local verbs.
constexpr VerbName kReplayedVerbs[] = {
    {"call", Verb::kCall},
    {"sync", Verb::kSync},
    {"MPI_Send", Verb::kSend},
    {"MPI_Recv", Verb::kRecv},
    {"MPI_Isend", Verb::kIsend},
    {"MPI_Irecv", Verb::kIrecv},
    {"MPI_Wait", Verb::kWait},
    {"MPI_Waitall", Verb::kWaitall},
    {"MPI_Sendrecv", Verb::kSendrecv},
    {"MPI_Barrier", Verb::kBarrier},
    {"MPI_Bcast", Verb::kBcast},
    {"MPI_Reduce", Verb::kReduce},
    {"MPI_Allreduce", Verb::kAllreduce},
    {"MPI_Gather", Verb::kGather},
    {"MPI_Scatter", Verb::kScatter},
    {"MPI_Alltoall", Verb::kAlltoall},
};

std::vector<std::string> split_ws(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) { return c >= '0' && c <= '9'; });
}

sim::TimeNs parse_time(const std::string& text, const std::string& where) {
  std::size_t suffix = text.size();
  while (suffix > 0 && !(text[suffix - 1] >= '0' && text[suffix - 1] <= '9')) --suffix;
  const std::string digits = text.substr(0, suffix);
  const std::string unit = text.substr(suffix);
  DT_EXPECT(!digits.empty(), where, ": bad time '", text, "'");
  double value = 0;
  try {
    value = std::stod(digits);
  } catch (const std::exception&) {
    fail(where, ": bad time '", text, "'");
  }
  DT_EXPECT(value >= 0, where, ": negative time '", text, "'");
  if (unit.empty() || unit == "ns") return static_cast<sim::TimeNs>(value);
  if (unit == "us") return sim::microseconds(value);
  if (unit == "ms") return sim::milliseconds(value);
  if (unit == "s") return sim::seconds(value);
  fail(where, ": unknown time unit '", unit, "' (use ns/us/ms/s)");
}

/// key=value accessor over one event line's trailing tokens.
class EventParser {
 public:
  EventParser(const std::vector<std::string>& tokens, std::size_t first,
              std::string where)
      : where_(std::move(where)) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      DT_EXPECT(eq != std::string::npos && eq > 0, where_, ": expected key=value, got '",
                tokens[i], "'");
      pairs_.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
    }
  }

  std::optional<std::string> take(const std::string& key) {
    for (auto it = pairs_.begin(); it != pairs_.end(); ++it) {
      if (it->first == key) {
        std::string value = it->second;
        pairs_.erase(it);
        return value;
      }
    }
    return std::nullopt;
  }

  std::string require(const std::string& key, const char* verb) {
    auto v = take(key);
    DT_EXPECT(v.has_value(), where_, ": ", verb, " needs ", key, "=");
    return *v;
  }

  int as_int(const std::string& value) const {
    try {
      return static_cast<int>(std::stoll(value));
    } catch (const std::exception&) {
      fail(where_, ": bad integer '", value, "'");
    }
  }
  std::int64_t as_i64(const std::string& value) const {
    try {
      return std::stoll(value);
    } catch (const std::exception&) {
      fail(where_, ": bad integer '", value, "'");
    }
  }

  void apply_int(const std::string& key, int* out) {
    if (auto v = take(key)) *out = as_int(*v);
  }
  void apply_i64(const std::string& key, std::int64_t* out) {
    if (auto v = take(key)) *out = as_i64(*v);
  }
  void apply_time(const std::string& key, sim::TimeNs* out) {
    if (auto v = take(key)) *out = parse_time(*v, where_);
  }

  void finish() const {
    DT_EXPECT(pairs_.empty(), where_, ": unknown key '",
              pairs_.empty() ? "" : pairs_.front().first, "'");
  }

  const std::string& where() const { return where_; }

 private:
  std::string where_;
  std::vector<std::pair<std::string, std::string>> pairs_;
};

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : text) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool is_collective(Verb verb) {
  switch (verb) {
    case Verb::kSync:
    case Verb::kBarrier:
    case Verb::kBcast:
    case Verb::kReduce:
    case Verb::kAllreduce:
    case Verb::kGather:
    case Verb::kScatter:
    case Verb::kAlltoall:
      return true;
    default:
      return false;
  }
}

/// Cross-rank well-formedness: p2p conservation, request discipline, and
/// collective-sequence identity -- parse-time guarantees that a replay
/// cannot deadlock or leak requests.
void validate(const ReplayTrace& trace, const std::string& origin) {
  // Point-to-point pairing per (src, dst, tag).
  std::map<std::tuple<int, int, int>, std::int64_t> balance;
  for (int r = 0; r < trace.ranks; ++r) {
    for (const ReplayEvent& ev : trace.events[static_cast<std::size_t>(r)]) {
      switch (ev.verb) {
        case Verb::kSend:
        case Verb::kIsend:
          ++balance[{r, ev.peer, ev.tag}];
          break;
        case Verb::kRecv:
        case Verb::kIrecv:
          --balance[{ev.peer, r, ev.tag}];
          break;
        case Verb::kSendrecv:
          ++balance[{r, ev.peer, ev.tag}];
          --balance[{ev.src, r, ev.tag}];
          break;
        default:
          break;
      }
    }
  }
  for (const auto& [key, count] : balance) {
    const auto [src, dst, tag] = key;
    DT_EXPECT(count == 0, origin, ": unmatched point-to-point traffic ", src, " -> ",
              dst, " tag ", tag, " (", count > 0 ? count : -count, " ",
              count > 0 ? "send(s) never received" : "recv(s) never sent",
              "); a replay would deadlock");
  }

  // Request discipline per rank: open exactly once, wait exactly once.
  for (int r = 0; r < trace.ranks; ++r) {
    std::set<std::string> open;
    for (const ReplayEvent& ev : trace.events[static_cast<std::size_t>(r)]) {
      if (ev.verb == Verb::kIsend || ev.verb == Verb::kIrecv) {
        DT_EXPECT(open.insert(ev.reqs.front()).second, origin, ": rank ", r,
                  " reuses request '", ev.reqs.front(), "' while it is in flight");
      } else if (ev.verb == Verb::kWait || ev.verb == Verb::kWaitall) {
        for (const std::string& req : ev.reqs) {
          DT_EXPECT(open.erase(req) == 1, origin, ": rank ", r,
                    " waits on unknown request '", req, "'");
        }
      }
    }
    DT_EXPECT(open.empty(), origin, ": rank ", r, " never waits on request '",
              open.empty() ? "" : *open.begin(), "'");
  }

  // Collectives (and safe-point offers) must line up across ranks.
  std::vector<std::tuple<Verb, int, std::int64_t>> shape0;
  for (int r = 0; r < trace.ranks; ++r) {
    std::vector<std::tuple<Verb, int, std::int64_t>> shape;
    for (const ReplayEvent& ev : trace.events[static_cast<std::size_t>(r)]) {
      if (is_collective(ev.verb)) shape.emplace_back(ev.verb, ev.peer, ev.bytes);
    }
    if (r == 0) {
      shape0 = std::move(shape);
      continue;
    }
    DT_EXPECT(shape.size() == shape0.size(), origin, ": rank ", r, " records ",
              shape.size(), " collective/sync event(s) but rank 0 records ",
              shape0.size(), "; a replay would deadlock");
    for (std::size_t i = 0; i < shape.size(); ++i) {
      DT_EXPECT(shape[i] == shape0[i], origin, ": rank ", r, "'s collective #", i + 1,
                " (", to_string(std::get<0>(shape[i])), ") does not match rank 0's (",
                to_string(std::get<0>(shape0[i])), "); a replay would deadlock");
    }
  }
}

}  // namespace

const char* to_string(Verb verb) {
  for (const auto& entry : kReplayedVerbs) {
    if (entry.verb == verb) return entry.name;
  }
  return "?";
}

bool in_dumpi_vocabulary(std::string_view name) {
  for (const char* candidate : kDumpiNames) {
    if (name == candidate) return true;
  }
  return false;
}

ReplayTrace ReplayTrace::parse(std::string_view text, const std::string& origin,
                               ParseOptions options) {
  ReplayTrace trace;
  std::vector<sim::TimeNs> cursor;  ///< per-rank last event timestamp
  std::set<std::string> seen_calls;
  std::set<std::string> seen_skips;
  bool have_subset_directive = false;

  int line_no = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;
    const std::string where = str::format("%s:%d", origin.c_str(), line_no);

    // --- directives ----------------------------------------------------------
    if (tokens[0] == "ranks") {
      DT_EXPECT(trace.ranks == 0, where, ": duplicate ranks directive");
      DT_EXPECT(tokens.size() == 2 && all_digits(tokens[1]), where,
                ": ranks takes one integer");
      trace.ranks = static_cast<int>(std::stoll(tokens[1]));
      DT_EXPECT(trace.ranks >= 1, where, ": ranks must be >= 1");
      trace.events.resize(static_cast<std::size_t>(trace.ranks));
      cursor.assign(static_cast<std::size_t>(trace.ranks), 0);
      continue;
    }
    if (tokens[0] == "app") {
      DT_EXPECT(tokens.size() == 2, where, ": app takes one name");
      trace.app_name = tokens[1];
      continue;
    }
    if (tokens[0] == "subset") {
      DT_EXPECT(tokens.size() >= 2, where, ": subset needs at least one function");
      have_subset_directive = true;
      trace.subset.assign(tokens.begin() + 1, tokens.end());
      continue;
    }

    // --- events: <rank> <time> <verb> [key=value ...] -----------------------
    DT_EXPECT(all_digits(tokens[0]), where, ": expected a directive or '<rank> <time> ",
              "<verb>', got '", tokens[0], "'");
    DT_EXPECT(trace.ranks > 0, where, ": the ranks directive must precede events");
    DT_EXPECT(tokens.size() >= 3, where, ": truncated event line (need rank, ",
              "timestamp and verb)");
    const int rank = static_cast<int>(std::stoll(tokens[0]));
    DT_EXPECT(rank < trace.ranks, where, ": rank ", rank, " out of range (ranks ",
              trace.ranks, ")");
    ReplayEvent ev;
    ev.at = parse_time(tokens[1], where);
    DT_EXPECT(ev.at >= cursor[static_cast<std::size_t>(rank)], where,
              ": non-monotonic timestamp for rank ", rank, " (",
              static_cast<long long>(ev.at), "ns after ",
              static_cast<long long>(cursor[static_cast<std::size_t>(rank)]), "ns)");
    cursor[static_cast<std::size_t>(rank)] = ev.at;

    const std::string& verb_name = tokens[2];
    const VerbName* match = nullptr;
    for (const auto& entry : kReplayedVerbs) {
      if (verb_name == entry.name) {
        match = &entry;
        break;
      }
    }
    if (match == nullptr) {
      DT_EXPECT(in_dumpi_vocabulary(verb_name), where, ": unknown verb '", verb_name,
                "' (not in the dumpi_function vocabulary; see docs/TRACE_REPLAY.md)");
      DT_EXPECT(!options.strict, where, ": unsupported verb '", verb_name,
                "' (in the dumpi_function vocabulary but not replayed; drop --replay-",
                "strict to skip-count it)");
      ++trace.skipped_events;
      if (seen_skips.insert(verb_name).second) trace.skipped_verbs.push_back(verb_name);
      continue;
    }
    ev.verb = match->verb;

    EventParser p(tokens, 3, where);
    switch (ev.verb) {
      case Verb::kCall:
        ev.fn = p.require("fn", "call");
        ev.work = parse_time(p.require("work", "call"), where);
        p.apply_i64("count", &ev.count);
        DT_EXPECT(ev.count >= 1, where, ": call count must be >= 1");
        if (seen_calls.insert(ev.fn).second) trace.call_functions.push_back(ev.fn);
        break;
      case Verb::kSync:
        break;
      case Verb::kSend:
      case Verb::kIsend:
        ev.peer = p.as_int(p.require("dst", verb_name.c_str()));
        p.apply_int("tag", &ev.tag);
        p.apply_i64("bytes", &ev.bytes);
        break;
      case Verb::kRecv:
      case Verb::kIrecv:
        ev.peer = p.as_int(p.require("src", verb_name.c_str()));
        p.apply_int("tag", &ev.tag);
        break;
      case Verb::kWait:
      case Verb::kWaitall:
        break;  // req= handled below
      case Verb::kSendrecv:
        ev.peer = p.as_int(p.require("dst", "MPI_Sendrecv"));
        ev.src = p.as_int(p.require("src", "MPI_Sendrecv"));
        p.apply_int("tag", &ev.tag);
        p.apply_i64("bytes", &ev.bytes);
        break;
      case Verb::kBcast:
      case Verb::kReduce:
      case Verb::kGather:
      case Verb::kScatter:
        ev.peer = p.as_int(p.require("root", verb_name.c_str()));
        p.apply_i64("bytes", &ev.bytes);
        break;
      case Verb::kBarrier:
        break;
      case Verb::kAllreduce:
      case Verb::kAlltoall:
        p.apply_i64("bytes", &ev.bytes);
        break;
    }
    if (ev.verb == Verb::kIsend || ev.verb == Verb::kIrecv || ev.verb == Verb::kWait ||
        ev.verb == Verb::kWaitall) {
      ev.reqs = split_commas(p.require("req", verb_name.c_str()));
      DT_EXPECT(!ev.reqs.empty(), where, ": empty req= list");
      DT_EXPECT(ev.verb == Verb::kWaitall || ev.reqs.size() == 1, where, ": ",
                verb_name, " takes a single req=");
    }
    if (ev.verb != Verb::kCall && ev.verb != Verb::kSync) p.apply_time("dur", &ev.dur);
    p.finish();

    // Range checks shared by the p2p verbs.
    if (ev.peer >= 0 || ev.verb == Verb::kSend || ev.verb == Verb::kRecv ||
        ev.verb == Verb::kIsend || ev.verb == Verb::kIrecv ||
        ev.verb == Verb::kSendrecv || ev.verb == Verb::kBcast ||
        ev.verb == Verb::kReduce || ev.verb == Verb::kGather ||
        ev.verb == Verb::kScatter) {
      DT_EXPECT(ev.peer >= 0 && ev.peer < trace.ranks, where, ": peer ", ev.peer,
                " out of range (ranks ", trace.ranks, ")");
    }
    if (ev.verb == Verb::kSendrecv) {
      DT_EXPECT(ev.src >= 0 && ev.src < trace.ranks, where, ": src ", ev.src,
                " out of range (ranks ", trace.ranks, ")");
    }
    const bool p2p = ev.verb == Verb::kSend || ev.verb == Verb::kRecv ||
                     ev.verb == Verb::kIsend || ev.verb == Verb::kIrecv;
    DT_EXPECT(!p2p || ev.peer != rank, where, ": rank ", rank,
              " sends/receives with itself");
    DT_EXPECT(ev.bytes >= 0, where, ": negative bytes");

    trace.events[static_cast<std::size_t>(rank)].push_back(std::move(ev));
  }

  DT_EXPECT(trace.ranks > 0, origin, ": missing ranks directive");
  if (!have_subset_directive) trace.subset = trace.call_functions;
  for (const std::string& fn : trace.subset) {
    DT_EXPECT(seen_calls.count(fn) != 0, origin, ": subset function '", fn,
              "' never appears in a call event");
  }
  validate(trace, origin);
  return trace;
}

ReplayTrace ReplayTrace::load(const std::string& path, ParseOptions options) {
  std::ifstream in(path);
  DT_EXPECT(in.good(), "cannot open trace '", path, "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), path, options);
}

}  // namespace dyntrace::replay
