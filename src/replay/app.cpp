#include "replay/app.hpp"

#include <map>
#include <utility>

#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::replay {

namespace {

std::shared_ptr<const image::SymbolTable> build_symbols(const ReplayTrace& trace) {
  auto symbols = std::make_shared<image::SymbolTable>();
  symbols->add("main", "replay");
  symbols->add("MPI_Init", "libmpi");
  symbols->add("MPI_Finalize", "libmpi");
  for (const std::string& fn : trace.call_functions) symbols->add(fn, "replay");
  return symbols;
}

sim::Coro<void> replay_rank(const ReplayTrace& trace, asci::AppContext& ctx,
                            proc::SimThread& thread) {
  mpi::Rank* mpi = ctx.mpi();
  DT_ASSERT(mpi != nullptr, "replay bodies require the MPI runtime");
  const auto& events = trace.events[static_cast<std::size_t>(ctx.rank())];
  sim::TimeNs cursor = 0;
  std::map<std::string, mpi::Rank::Request> open;
  for (const ReplayEvent& ev : events) {
    // Recorded idle/compute between the cursor and this event's timestamp.
    if (ev.at > cursor) {
      co_await thread.compute(ev.at - cursor);
      cursor = ev.at;
    }
    switch (ev.verb) {
      case Verb::kCall:
        if (ev.count > 1) {
          co_await ctx.leaf_repeat(thread, ev.fn, ev.count, ev.work);
        } else {
          co_await ctx.leaf(thread, ev.fn, ev.work);
        }
        cursor += ev.count * ev.work;
        break;
      case Verb::kSync:
        co_await ctx.safe_point(thread);
        break;
      case Verb::kSend:
        co_await mpi->send(thread, ev.peer, ev.tag, ev.bytes);
        break;
      case Verb::kRecv:
        co_await mpi->recv(thread, ev.peer, ev.tag, nullptr);
        break;
      case Verb::kIsend: {
        mpi::Rank::Request request;
        co_await mpi->isend(thread, ev.peer, ev.tag, ev.bytes, &request);
        open.emplace(ev.reqs.front(), std::move(request));
        break;
      }
      case Verb::kIrecv: {
        mpi::Rank::Request request;
        mpi->irecv(ev.peer, ev.tag, &request);
        open.emplace(ev.reqs.front(), std::move(request));
        break;
      }
      case Verb::kWait: {
        const auto it = open.find(ev.reqs.front());
        co_await mpi->wait(thread, it->second, nullptr);
        open.erase(it);
        break;
      }
      case Verb::kWaitall: {
        std::vector<mpi::Rank::Request> requests;
        requests.reserve(ev.reqs.size());
        for (const std::string& name : ev.reqs) {
          const auto it = open.find(name);
          requests.push_back(std::move(it->second));
          open.erase(it);
        }
        co_await mpi->waitall(thread, requests);
        break;
      }
      case Verb::kSendrecv:
        co_await mpi->sendrecv(thread, ev.peer, ev.tag, ev.bytes, ev.src, ev.tag,
                               nullptr);
        break;
      case Verb::kBarrier:
        co_await mpi->barrier(thread);
        break;
      case Verb::kBcast:
        co_await mpi->bcast(thread, ev.peer, ev.bytes);
        break;
      case Verb::kReduce:
        co_await mpi->reduce(thread, ev.peer, ev.bytes);
        break;
      case Verb::kAllreduce:
        co_await mpi->allreduce(thread, ev.bytes);
        break;
      case Verb::kGather:
        co_await mpi->gather(thread, ev.peer, ev.bytes);
        break;
      case Verb::kScatter:
        co_await mpi->scatter(thread, ev.peer, ev.bytes);
        break;
      case Verb::kAlltoall:
        co_await mpi->alltoall(thread, ev.bytes);
        break;
    }
    if (ev.verb != Verb::kCall) cursor += ev.dur;
  }
}

}  // namespace

ReplayApp::ReplayApp(ReplayTrace trace)
    : trace_(std::make_shared<const ReplayTrace>(std::move(trace))) {
  std::size_t total_events = 0;
  for (const auto& stream : trace_->events) total_events += stream.size();
  spec_.name = trace_->app_name;
  spec_.language = "trace";
  spec_.description = str::format("replayed MPI trace (%d ranks, %zu events)",
                                  trace_->ranks, total_events);
  spec_.model = asci::AppSpec::Model::kMpi;
  spec_.scaling = asci::AppSpec::Scaling::kWeak;
  spec_.min_procs = trace_->ranks;
  spec_.max_procs = trace_->ranks;
  spec_.symbols = build_symbols(*trace_);
  spec_.subset = trace_->subset;
  spec_.dynamic_list = trace_->subset;
  spec_.body = [trace = trace_](asci::AppContext& ctx,
                                proc::SimThread& thread) -> sim::Coro<void> {
    return replay_rank(*trace, ctx, thread);
  };
}

std::shared_ptr<ReplayApp> load_app(const std::string& path, ParseOptions options) {
  return std::make_shared<ReplayApp>(ReplayTrace::load(path, options));
}

}  // namespace dyntrace::replay
