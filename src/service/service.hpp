// ControlService: the multi-tenant interactive control service
// (DESIGN.md §13).
//
// One long-lived service process on the tool node multiplexes many
// concurrent sessions onto a single shared dynprof attachment:
//
//   * requests arrive as sized messages on the tool node's shard and are
//     decided inline (admission pricing, subscription validation) or
//     deferred (patching, safe-point application, admission queue);
//   * physical probe edits batch through one patch executor coroutine that
//     drives DynprofTool::insert_functions / remove_functions, so any
//     number of sessions costs one suspend/patch/resume cycle per batch --
//     and once a daemon death abandons a node, every patch-path response
//     reports kDaemonLost with the lost node list (the probes cannot reach
//     those ranks), never a hang;
//   * filter directives (session confsyncs, admission degrades, budget
//     arbitration) travel to a *break agent* homed on rank 0's shard, which
//     merges them in (session, seq) order at each VT_confsync safe point --
//     two sessions staging conflicting updates at one safe point therefore
//     serialize deterministically, with the image state equal to applying
//     them in session-id order;
//   * the break agent also runs the overhead estimator per window, fans
//     subscription deltas out to sessions straight from rank 0 (the stats
//     overlay root -- sessions never receive the full event stream), and
//     reports rates back so the admission controller re-arbitrates.
//
// Everything crosses shards exclusively through Engine::deliver_at with
// Cluster::message_delay latencies, so runs are bit-identical across
// --sim-threads.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dynprof/launch.hpp"
#include "dynprof/tool.hpp"
#include "service/admission.hpp"
#include "service/session.hpp"
#include "sim/sync.hpp"

namespace dyntrace::service {

struct ServiceOptions {
  double budget_fraction = 0.05;
  /// Assumed pairs/sec for not-yet-observed functions.
  double default_rate_hz = 1000.0;
  /// How long a denied instrument request may wait in the admission queue
  /// for headroom before kDenied is surfaced (0 = fail fast).
  sim::TimeNs queue_timeout = sim::seconds(30);

  // --- overload protection (DESIGN.md §14.3) --------------------------------
  // All bounds default off so a small deployment behaves exactly as before;
  // a storm-facing deployment sets them and takes deterministic kShed /
  // kCanceled responses instead of unbounded queues.

  /// Bound on the admission queue; a denial that would queue past it is
  /// shed (kShed) instead.  0 = unbounded.
  std::size_t max_queue_depth = 0;
  /// Bound on one session's deferred commands (queued admissions plus
  /// patch responses in flight); excess instruments are shed.  0 = off.
  int max_session_inflight = 0;
  /// End-to-end deadline per instrument request, from service receipt to
  /// response.  A request still queued past it is canceled (kCanceled); a
  /// patch that lands after it responds kCanceled so the client's wait is
  /// bounded by the service, not just its own timer.  0 = off.
  sim::TimeNs request_deadline = 0;
  /// Subscription credit window: deltas in flight to one subscriber before
  /// further windows are dropped-and-counted instead of buffered without
  /// bound.  Credits return after the delivery round trip (client stall
  /// faults slow the return leg, which is what makes a subscriber "slow").
  /// 0 = unbounded (legacy fire-and-forget).
  int sub_window = 4;
  /// Modelled client-side processing per delta before its credit returns.
  sim::TimeNs sub_client_stall = 0;
};

/// One safe-point window as the service saw it: the measured overhead of
/// the last window, and the priced (admission-intent) overhead before and
/// after arbitration.  The budget invariant the bench gates on is
/// priced_after <= budget OR at_floor, for every window.
struct WindowRecord {
  std::uint64_t sync = 0;
  sim::TimeNs time = 0;
  sim::TimeNs window = 0;
  double measured_fraction = 0.0;
  double priced_before = 0.0;
  double priced_after = 0.0;
  std::uint32_t flips = 0;
  bool at_floor = false;
};

class ControlService {
 public:
  /// Executed on the session's client-node engine when a response / delta
  /// arrives (drivers bump counters or feed a mailbox from these).
  using ResponseSink = std::function<void(const Response&)>;
  using DeltaSink = std::function<void(const SubscriptionDelta&)>;

  /// Wires the rank-0 break agent immediately (before Engine::run); the
  /// service's own coroutines start with start().
  ControlService(dynprof::Launch& launch, dynprof::DynprofTool& tool,
                 ServiceOptions options);
  ~ControlService();
  ControlService(const ControlService&) = delete;
  ControlService& operator=(const ControlService&) = delete;

  /// Declare a session's response/delta delivery endpoints (host-side
  /// setup, before Engine::run).
  void register_session(SessionId id, int client_node, ResponseSink responses,
                        DeltaSink deltas = {});

  /// Spawn the patch executor.  Call from a coroutine on the tool shard
  /// after DynprofTool::attached() has fired (probe edits are only valid
  /// once the target is released into main()).
  void start();

  /// Hand one request to the service.  Must run on the tool node's shard;
  /// session drivers get here via deliver_at with message_delay latency.
  void submit(Request request);

  /// Stop accepting work and ask the break agent to stage a deactivate
  /// directive for `sentinel_function` at the next safe point -- the
  /// scenario applications watch that filter entry and exit collectively.
  void initiate_shutdown(const std::string& sentinel_function);

  sim::Engine& engine() { return engine_; }
  int node() const { return node_; }
  const std::vector<WindowRecord>& windows() const { return windows_; }
  const AdmissionController& admission() const { return admission_; }
  std::size_t sessions_active() const { return active_sessions_; }
  std::uint64_t responses_sent() const { return responses_sent_; }
  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t shed_commands() const { return shed_commands_; }
  std::uint64_t deadline_cancels() const { return deadline_cancels_; }
  std::uint64_t fairshare_flips() const { return fairshare_flips_; }
  std::uint64_t sub_drops() const { return sub_drops_; }

 private:
  struct BreakAgent;

  struct PatchOp {
    std::vector<std::string> install;
    std::vector<std::string> remove;
    /// Response to send once the batch lands; session == kServiceSession
    /// means no response (e.g. detach-driven removals).
    Response response;
    /// End-to-end deadline stamped at receipt (0 = none): a batch landing
    /// past it answers kCanceled.
    sim::TimeNs deadline = 0;
  };

  struct QueuedAdmit {
    Request request;
    sim::TimeNs enqueued = 0;
    sim::TimeNs deadline = 0;  ///< 0 = none
  };

  struct SessionEndpoint {
    int client_node = 0;
    ResponseSink responses;
    DeltaSink deltas;
  };

  /// The break agent's post-window report (built on rank 0's shard,
  /// delivered to the service's).
  struct WindowReport {
    std::uint64_t sync = 0;
    sim::TimeNs time = 0;
    sim::TimeNs window = 0;
    double measured_fraction = 0.0;
    struct RateLine {
      image::FunctionId fn = 0;
      std::uint64_t pairs = 0;
      std::uint64_t suppressed = 0;
    };
    std::vector<RateLine> lines;
    vt::FilterProgram applied;
    std::vector<std::pair<SessionId, std::uint32_t>> acks;
    /// Deltas dropped this window because subscribers were out of credits.
    std::uint64_t sub_drops = 0;
  };

  void handle_instrument(const Request& request, bool from_queue);
  bool try_admit(const Request& request, bool allow_queue, sim::TimeNs deadline);
  /// One session's deferred commands: queued admissions + patches in flight.
  int session_load(SessionId session) const;
  void stage_service_program(vt::FilterProgram program);
  void handle_confsync(const Request& request);
  void handle_subscribe(const Request& request);
  void handle_detach(const Request& request);
  void on_window(const WindowReport& report);
  void retry_queue();
  void respond(const Request& request, Status status, double projected = 0.0);
  void send_response(Response response);
  void enqueue_patch(PatchOp op);
  void forward_to_agent(std::int64_t bytes, std::function<void(BreakAgent&)> mutate);
  sim::Coro<void> patch_loop();

  dynprof::Launch& launch_;
  dynprof::DynprofTool& tool_;
  machine::Cluster& cluster_;
  sim::Engine& engine_;  ///< the tool node's shard
  ServiceOptions options_;
  int node_ = 0;        ///< tool node
  int agent_node_ = 0;  ///< rank 0's node
  std::shared_ptr<const image::SymbolTable> symbols_;
  AdmissionController admission_;
  std::unique_ptr<BreakAgent> agent_;

  std::map<SessionId, SessionEndpoint> endpoints_;
  std::size_t active_sessions_ = 0;
  bool started_ = false;
  bool shutting_down_ = false;

  std::deque<PatchOp> patch_queue_;
  std::unique_ptr<sim::Condition> patch_ready_;
  std::deque<QueuedAdmit> queue_;
  std::vector<WindowRecord> windows_;
  std::uint64_t responses_sent_ = 0;
  /// Patch responses in flight per session (overload accounting).
  std::map<SessionId, int> patch_pending_;
  std::uint64_t shed_commands_ = 0;
  std::uint64_t deadline_cancels_ = 0;
  std::uint64_t fairshare_flips_ = 0;
  std::uint64_t sub_drops_ = 0;
};

}  // namespace dyntrace::service
