// Scenario harness for the multi-tenant control service: one shared target
// job (a synthetic MPI application), one persistent dynprof attachment, one
// ControlService, and N simulated user sessions issuing deterministic
// command scripts from client nodes.  Used by the service tests and
// bench/service_sessions.
//
// The synthetic application ("svcapp") runs an open-ended iteration loop --
// rotating leaf work over its function inventory, a collective reduction,
// and a safe-point offer per iteration -- and exits *collectively* when a
// shutdown sentinel function is filter-deactivated: the service stages the
// directive, VT_confsync applies it on every rank at the same safe point,
// and all ranks observe it at the same iteration.  Flag-based shutdown
// would reach ranks at different times and hang the collective; the
// sentinel uses the paper's own §5 machinery instead.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "asci/app.hpp"
#include "fault/injector.hpp"
#include "service/service.hpp"

namespace dyntrace::service {

/// Name of svcapp's shutdown sentinel function.
const char* scenario_sentinel();

/// Build the synthetic service-target application with `functions` user
/// functions ("svc_fn_00" ...).  The returned spec owns its symbols; keep
/// it alive for the Launch's lifetime.
asci::AppSpec make_svcapp(int functions);

struct ScenarioOptions {
  int ranks = 8;
  int functions = 32;
  int sessions = 64;
  /// Client nodes used round-robin, starting one above the tool node.
  int session_nodes = 16;
  /// Commands between the implicit attach and detach of generated scripts.
  int commands_per_session = 4;
  int sim_threads = 1;
  std::uint64_t seed = 42;
  double problem_scale = 1.0;
  int confsync_interval = 2;
  ServiceOptions service;
  /// Sessions driven per driver coroutine (sequentially).  1 = one
  /// coroutine + mailbox per session (the legacy shape); the 100k-session
  /// bench batches hundreds per driver so memory stays flat in sessions.
  int session_batch = 1;
  /// Commands one session keeps in flight before waiting (its detach still
  /// drains the window first).  >1 exercises the service's per-session
  /// overload bounds; 1 is the legacy lock-step driver.
  int pipeline_depth = 1;
  /// Gap between consecutive sessions' start gates.
  sim::TimeNs session_stagger = sim::microseconds(50);
  /// Driver-side deadline per command; a missing response becomes an
  /// explicit kTimeout outcome, never a hang.
  sim::TimeNs response_timeout = sim::seconds(240);
  std::shared_ptr<fault::FaultInjector> fault;
  telemetry::Level telemetry_level = telemetry::default_level();
  /// Non-empty: run exactly these scripts (outer index = session id)
  /// instead of generated ones.  kAttach/kDetach are added automatically;
  /// entries only need kind + payload.
  std::vector<std::vector<Request>> scripted_sessions;
};

struct ScenarioResult {
  struct CommandOutcome {
    CommandKind kind = CommandKind::kAttach;
    Status status = Status::kOk;
    sim::TimeNs latency = 0;
  };
  struct SessionOutcome {
    SessionId id = 0;
    int node = 0;
    std::vector<CommandOutcome> commands;
    std::uint64_t deltas = 0;       ///< subscription deltas received
    std::uint64_t delta_pairs = 0;  ///< event pairs summarised across them
  };

  std::vector<SessionOutcome> sessions;  ///< session-id order
  std::vector<WindowRecord> windows;
  std::map<Status, std::uint64_t> status_counts;
  std::uint64_t commands = 0;
  std::vector<sim::TimeNs> latencies;  ///< every command's latency

  /// Sessions burst-admitted by `storm` fault actions (included in
  /// `sessions`, after the configured ones).
  std::size_t storm_sessions = 0;
  /// Overload-protection counters (ControlService accessors).
  std::uint64_t shed_commands = 0;
  std::uint64_t deadline_cancels = 0;
  std::uint64_t fairshare_flips = 0;
  std::uint64_t sub_drops = 0;

  /// priced_after <= budget (or at_floor) held in every window.
  bool budget_ok = true;
  std::size_t budget_violations = 0;

  /// Final rank-0 filter state (function ids deactivated), sentinel
  /// included -- the satellite-3 serialization assertions read this.
  std::vector<image::FunctionId> rank0_deactivated;
  std::vector<int> lost_ranks;

  double sim_seconds = 0;
  double host_seconds = 0;
  std::uint64_t stats_digest = 0;
  /// FNV-1a over outcomes, windows, filter state -- the cross-thread
  /// determinism fingerprint.
  std::uint64_t digest = 0;
};

ScenarioResult run_scenario(const ScenarioOptions& options);

}  // namespace dyntrace::service
