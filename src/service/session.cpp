#include "service/session.hpp"

namespace dyntrace::service {

const char* to_string(CommandKind kind) {
  switch (kind) {
    case CommandKind::kAttach: return "attach";
    case CommandKind::kInstrument: return "instrument";
    case CommandKind::kConfsync: return "confsync";
    case CommandKind::kSubscribe: return "subscribe";
    case CommandKind::kReport: return "report";
    case CommandKind::kDetach: return "detach";
  }
  return "?";
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kAdmitted: return "admitted";
    case Status::kDegraded: return "degraded";
    case Status::kDenied: return "denied";
    case Status::kError: return "error";
    case Status::kDaemonLost: return "daemon-lost";
    case Status::kShutdown: return "shutdown";
    case Status::kTimeout: return "timeout";
    case Status::kShed: return "shed";
    case Status::kCanceled: return "canceled";
  }
  return "?";
}

std::int64_t request_bytes(const Request& request) {
  std::int64_t bytes = 64;  // header: session, seq, kind, node
  for (const auto& name : request.functions) {
    bytes += static_cast<std::int64_t>(name.size()) + 8;
  }
  for (const auto& directive : request.directives) {
    bytes += static_cast<std::int64_t>(directive.pattern.size()) + 8;
  }
  bytes += static_cast<std::int64_t>(request.pattern.size());
  return bytes;
}

std::int64_t response_bytes(const Response& response) {
  return 64 + 8 * static_cast<std::int64_t>(response.lost_nodes.size());
}

}  // namespace dyntrace::service
