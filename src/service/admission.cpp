#include "service/admission.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace dyntrace::service {

AdmissionController::AdmissionController(
    std::shared_ptr<const image::SymbolTable> symbols, control::PairPrice pair_price,
    AdmissionOptions options)
    : symbols_(std::move(symbols)), price_(pair_price), options_(options) {
  DT_EXPECT(symbols_ != nullptr, "admission controller needs a symbol table");
  fns_.resize(symbols_->size());
}

AdmitResult AdmissionController::admit(SessionId session,
                                       const std::vector<image::FunctionId>& fns) {
  AdmitResult result;

  // Deduplicate the request and drop functions the session already holds
  // (a repeat grant must not double-count holders).
  std::vector<image::FunctionId> unique = fns;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  std::vector<image::FunctionId>& held = grants_[session];
  std::vector<image::FunctionId> fresh;
  for (const image::FunctionId fn : unique) {
    DT_ASSERT(fn < fns_.size(), "admit: function id out of range");
    if (std::find(held.begin(), held.end(), fn) == held.end()) fresh.push_back(fn);
  }

  // The marginal cost is the functions nobody holds yet; shared functions
  // are already priced in.
  double marginal_active = 0.0;
  double marginal_residual = 0.0;
  bool touches_degraded = false;
  for (const image::FunctionId fn : fresh) {
    const FnState& state = fns_[fn];
    if (state.holders > 0) {
      if (state.filtered) touches_degraded = true;
      continue;
    }
    const double r = rate(state);
    marginal_active += control::overhead_fraction(price_.active, r);
    marginal_residual += control::overhead_fraction(price_.residual, r);
  }

  const double priced = priced_fraction();
  const bool fits_active = priced + marginal_active <= options_.budget_fraction;
  const bool fits_residual = priced + marginal_residual <= options_.budget_fraction;
  if (!fits_active && !fits_residual) {
    result.decision = AdmitDecision::kDenied;
    result.projected_fraction = priced;
    if (held.empty()) grants_.erase(session);
    return result;
  }

  for (const image::FunctionId fn : fresh) {
    FnState& state = fns_[fn];
    if (state.holders == 0) {
      result.install.push_back(fn);
      state.filtered = !fits_active;
      if (state.filtered) {
        result.directives.push_back({/*activate=*/false, symbols_->at(fn).name});
      }
    }
    ++state.holders;
    held.push_back(fn);
  }
  result.decision = (!fits_active || touches_degraded) ? AdmitDecision::kDegraded
                                                       : AdmitDecision::kAdmitted;
  result.projected_fraction = priced_fraction();
  return result;
}

ReleaseResult AdmissionController::release(SessionId session) {
  ReleaseResult result;
  const auto it = grants_.find(session);
  if (it == grants_.end()) return result;
  for (const image::FunctionId fn : it->second) {
    FnState& state = fns_[fn];
    DT_ASSERT(state.holders > 0, "release: holder underflow");
    if (--state.holders == 0) {
      result.remove.push_back(fn);
      if (state.filtered) {
        result.directives.push_back({/*activate=*/true, symbols_->at(fn).name});
        state.filtered = false;
      }
    }
  }
  std::sort(result.remove.begin(), result.remove.end());
  grants_.erase(it);
  return result;
}

void AdmissionController::update_rate(image::FunctionId fn, double pairs_per_sec) {
  if (fn >= fns_.size() || fns_[fn].holders == 0) {
    ++rate_updates_ignored_;
    return;
  }
  fns_[fn].rate_hz = pairs_per_sec;
  fns_[fn].rate_observed = true;
}

ArbitrateResult AdmissionController::arbitrate() {
  ArbitrateResult result;
  while (priced_fraction() > options_.budget_fraction) {
    // The legacy (pure-price) victim: most expensive active function
    // overall, lowest id on ties.  Kept as the fairness-divergence baseline.
    image::FunctionId priciest = image::kInvalidFunction;
    double worst = 0.0;
    for (image::FunctionId fn = 0; fn < fns_.size(); ++fn) {
      const FnState& state = fns_[fn];
      if (state.holders == 0 || state.filtered) continue;
      const double f = fraction(state);
      if (priciest == image::kInvalidFunction || f > worst) {
        priciest = fn;
        worst = f;
      }
    }
    if (priciest == image::kInvalidFunction) {
      result.at_floor = true;
      break;
    }

    // Fair-share victim: charge each session its attributed cost -- active
    // fractions split evenly across holders -- and degrade the costliest
    // session's most expensive active function.  grants_ iterates in
    // session-id order, so the strict > keeps the lowest id on ties.
    SessionId victim_session = 0;
    double victim_cost = -1.0;
    for (const auto& [session, held] : grants_) {
      double cost = 0.0;
      for (const image::FunctionId fn : held) {
        const FnState& state = fns_[fn];
        if (state.filtered) continue;
        cost += fraction(state) / static_cast<double>(state.holders);
      }
      if (cost > victim_cost + 1e-15) {
        victim_session = session;
        victim_cost = cost;
      }
    }
    image::FunctionId victim = image::kInvalidFunction;
    double victim_fraction = 0.0;
    if (victim_cost > 0.0) {
      std::vector<image::FunctionId> held = grants_[victim_session];
      std::sort(held.begin(), held.end());
      for (const image::FunctionId fn : held) {
        const FnState& state = fns_[fn];
        if (state.filtered) continue;
        const double f = fraction(state);
        if (victim == image::kInvalidFunction || f > victim_fraction + 1e-15) {
          victim = fn;
          victim_fraction = f;
        }
      }
    }
    if (victim == image::kInvalidFunction) victim = priciest;
    if (victim != priciest) ++result.fairshare_flips;

    fns_[victim].filtered = true;
    result.flipped.push_back(victim);
    result.directives.push_back({/*activate=*/false, symbols_->at(victim).name});
  }
  return result;
}

void AdmissionController::replay(const vt::FilterProgram& applied) {
  for (const auto& directive : applied) {
    for (const image::FunctionId fn : symbols_->match(directive.pattern)) {
      if (fns_[fn].holders > 0) fns_[fn].filtered = !directive.activate;
    }
  }
}

double AdmissionController::priced_fraction() const {
  double total = 0.0;
  for (const FnState& state : fns_) {
    if (state.holders > 0) total += fraction(state);
  }
  return total;
}

bool AdmissionController::installed(image::FunctionId fn) const {
  return fn < fns_.size() && fns_[fn].holders > 0;
}

bool AdmissionController::filtered(image::FunctionId fn) const {
  return fn < fns_.size() && fns_[fn].filtered;
}

int AdmissionController::holders(image::FunctionId fn) const {
  return fn < fns_.size() ? fns_[fn].holders : 0;
}

std::size_t AdmissionController::installed_count() const {
  std::size_t count = 0;
  for (const FnState& state : fns_) count += state.holders > 0 ? 1 : 0;
  return count;
}

}  // namespace dyntrace::service
