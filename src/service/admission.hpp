// Admission control: keeps the combined per-job instrumentation overhead
// of all concurrent sessions under one budget (DESIGN.md §13.2).
//
// Pure bookkeeping over the control plane's const pricing API -- no
// simulation types, no coroutines -- so the policy is unit-testable on its
// own.  The ControlService owns one instance and is the only writer.
//
// Model: every dynprof probe pair costs the same (control::probe_pair_price
// is uniform across functions), so a function's overhead fraction is
// price x observed call rate.  The controller tracks, per function,
//   * holders -- how many sessions hold a grant on it (probes are shared:
//     installed on 0->1, removed on ->0);
//   * filtered -- whether the function currently sits on the Subset rung
//     (filter-deactivated: residual lookup cost instead of the full pair);
//   * rate -- completed+suppressed pairs per second, learned from the
//     estimator's windows (default_rate_hz until first observed).
//
// admit() reuses PR 4's degradation ladder for the answer:
//   Dynamic (kAdmitted)  -- the set fits fully active;
//   Subset  (kDegraded)  -- only fits with the new functions deactivated
//                           through the filter (directives returned for the
//                           next safe point), or shares an already-degraded
//                           function;
//   None    (kDenied)    -- does not fit even degraded (the service queues
//                           and retries before surfacing this).
//
// arbitrate() restores the invariant after rates move.  Flips are chosen
// *fair-share*: each flip charges the session with the largest attributed
// cost (sum over its active functions of fraction/holders -- shared
// functions split their cost evenly), flipping that session's most
// expensive active function.  A lone session degrades exactly as the old
// most-expensive-first walk did; with several tenants the policy stops one
// cheap session from being starved because a noisy neighbour's functions
// happen to price lower individually.  Ties break on lowest session id,
// then lowest function id, so the walk stays deterministic; at_floor is
// reported when everything is already degraded.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "control/pricing.hpp"
#include "service/session.hpp"

namespace dyntrace::service {

struct AdmissionOptions {
  /// Ceiling for the priced per-process overhead fraction.
  double budget_fraction = 0.05;
  /// Assumed call rate (pairs/sec) for functions with no observed window.
  double default_rate_hz = 1000.0;
};

enum class AdmitDecision : std::uint8_t { kAdmitted = 0, kDegraded, kDenied };

struct AdmitResult {
  AdmitDecision decision = AdmitDecision::kDenied;
  /// Functions to physically instrument (holder count went 0 -> 1).
  std::vector<image::FunctionId> install;
  /// Filter directives to stage (degrade flips for the new functions).
  vt::FilterProgram directives;
  /// Priced fraction after the grant (unchanged when denied).
  double projected_fraction = 0.0;
};

struct ReleaseResult {
  /// Functions whose probes should be removed (holder count hit 0).
  std::vector<image::FunctionId> remove;
  /// Directives clearing their filter entries so a later re-admission
  /// starts from a clean table.
  vt::FilterProgram directives;
};

struct ArbitrateResult {
  vt::FilterProgram directives;
  std::vector<image::FunctionId> flipped;
  /// Still over budget with every installed function already filtered: the
  /// residual lookup cost alone exceeds the budget.  Admissions stop; the
  /// invariant reported per window is "priced <= budget OR at_floor".
  bool at_floor = false;
  /// Flips where fair-share picked a different victim than the legacy
  /// most-expensive-first walk would have -- i.e. fairness overrode price.
  std::uint32_t fairshare_flips = 0;
};

class AdmissionController {
 public:
  AdmissionController(std::shared_ptr<const image::SymbolTable> symbols,
                      control::PairPrice pair_price, AdmissionOptions options);

  /// Price and decide one session's requested probe set.  Mutates holder
  /// counts and filter intent on admit/degrade; a denial changes nothing.
  /// Repeat grants to one session merge (functions are held once).
  AdmitResult admit(SessionId session, const std::vector<image::FunctionId>& fns);

  /// Drop every grant the session holds.
  ReleaseResult release(SessionId session);

  /// Learn a window's observed rate for one function.  Rates reported for
  /// functions nobody holds (a release raced the estimator window, or a
  /// stale line) are ignored and counted -- pricing a future admission of
  /// that function from a rate observed under different instrumentation
  /// would be wrong, and learning rates for never-installed ids was how the
  /// default-rate path silently rotted.
  void update_rate(image::FunctionId fn, double pairs_per_sec);
  std::uint64_t rate_updates_ignored() const { return rate_updates_ignored_; }

  /// Re-establish priced <= budget after rates moved or a replayed program
  /// reactivated functions.  Flips are deterministic and fair-share (see
  /// the header comment): costliest session first, lowest ids on ties.
  ArbitrateResult arbitrate();

  /// Mirror the filter program rank 0 actually applied at a safe point
  /// (sessions' own confsync directives included), in applied order.
  void replay(const vt::FilterProgram& applied);

  /// Priced per-process overhead fraction of everything installed.
  double priced_fraction() const;

  bool installed(image::FunctionId fn) const;
  bool filtered(image::FunctionId fn) const;
  int holders(image::FunctionId fn) const;
  std::size_t installed_count() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  struct FnState {
    int holders = 0;
    bool filtered = false;
    double rate_hz = 0.0;
    bool rate_observed = false;
  };

  double rate(const FnState& state) const {
    return state.rate_observed ? state.rate_hz : options_.default_rate_hz;
  }
  double fraction(const FnState& state) const {
    return control::overhead_fraction(
        state.filtered ? price_.residual : price_.active, rate(state));
  }

  std::shared_ptr<const image::SymbolTable> symbols_;
  control::PairPrice price_;
  AdmissionOptions options_;
  std::vector<FnState> fns_;
  std::uint64_t rate_updates_ignored_ = 0;
  /// Ordered by session id so release-driven removals are deterministic.
  std::map<SessionId, std::vector<image::FunctionId>> grants_;
};

}  // namespace dyntrace::service
