#include "service/service.hpp"

#include <algorithm>

#include "control/estimator.hpp"
#include "fault/injector.hpp"
#include "support/common.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::service {

namespace {

/// Modelled cost of scanning one statistics record at the configuration
/// break (same figure the budget controller charges).
constexpr sim::TimeNs kScanCostPerRecord = 200;

}  // namespace

// ---------------------------------------------------------------------------
// BreakAgent: lives on rank 0's shard.  The service mutates it exclusively
// through deliver_at messages; the VT_confsync break handler reads it.
// ---------------------------------------------------------------------------

struct ControlService::BreakAgent {
  ControlService& service;
  machine::Cluster& cluster;
  std::shared_ptr<vt::StagedUpdate> staged;
  int node = 0;          ///< rank 0's node
  int service_node = 0;  ///< the tool node

  control::OverheadEstimator estimator;

  struct PendingProgram {
    SessionId session = 0;
    std::uint32_t seq = 0;
    vt::FilterProgram program;
    bool ack = false;
  };
  std::vector<PendingProgram> pending;

  struct Subscription {
    SessionId session = 0;
    int client_node = 0;
    std::vector<std::uint8_t> match;  ///< per-function-id membership
    DeltaSink sink;
    /// Remaining delivery credits (sub_window > 0); a window arriving with
    /// none left is dropped-and-counted, never buffered.
    int credits = 0;
    std::uint64_t dropped = 0;
  };
  std::vector<Subscription> subs;  ///< kept in session-id order

  /// Slow-subscriber bounds (from ServiceOptions; sub_window 0 = legacy
  /// unbounded fan-out).
  int sub_window = 0;
  sim::TimeNs sub_stall = 0;

  /// Seq counter for the service's own (kServiceSession) programs, so
  /// arbitration flips keep their relative order under the sort.
  std::uint32_t service_seq = 0;

  bool stop_requested = false;
  bool stop_staged = false;
  std::string sentinel;
  std::uint64_t syncs = 0;

  BreakAgent(ControlService& svc, machine::Cluster& c, std::shared_ptr<vt::StagedUpdate> s,
             int agent_node, int svc_node)
      : service(svc), cluster(c), staged(std::move(s)), node(agent_node),
        service_node(svc_node) {}

  /// A delivered delta's credit comes home (runs on this agent's shard).
  /// Keyed by session id, not index: subs reorder under insert/erase, and a
  /// credit returning after its session detached is simply dropped.
  void return_credit(SessionId session) {
    for (Subscription& sub : subs) {
      if (sub.session == session) {
        if (sub.credits < sub_window) ++sub.credits;
        return;
      }
    }
  }

  sim::TimeNs on_break(vt::VtLib& vt) {
    sim::Engine& engine = vt.process().engine();
    const sim::TimeNs now = engine.now();
    ++syncs;
    const control::Estimate estimate = estimator.update(vt, now);

    // Subscription push-down: each session receives only its matching
    // functions' activity, fanned out from the reduction root -- never the
    // full event stream.  Deliveries spend a credit that returns after the
    // round trip (plus the modelled client processing, stretched by any
    // stall fault on the client's node); a subscriber out of credits is a
    // slow subscriber, and its window is dropped-and-counted rather than
    // buffered without bound.
    std::uint64_t window_drops = 0;
    if (estimate.window > 0 && !subs.empty()) {
      telemetry::Registry& reg = telemetry::current();
      fault::FaultInjector* injector = cluster.fault_injector();
      for (Subscription& sub : subs) {
        if (sub_window > 0 && sub.credits <= 0) {
          ++sub.dropped;
          ++window_drops;
          reg.add(reg.metrics().service_sub_drops);
          continue;
        }
        SubscriptionDelta delta;
        delta.session = sub.session;
        delta.sync = syncs;
        for (const auto& fe : estimate.functions) {
          if (fe.fn < sub.match.size() && sub.match[fe.fn] != 0) {
            ++delta.functions;
            delta.pairs += fe.pairs + fe.suppressed;
          }
        }
        const sim::TimeNs delay =
            cluster.message_delay(node, sub.client_node, kDeltaBytes, now);
        DeltaSink sink = sub.sink;
        cluster.engine_for_node(sub.client_node)
            .deliver_at(now + delay, [sink, delta] { sink(delta); });
        reg.add(reg.metrics().service_sub_deliveries);
        reg.add(reg.metrics().service_sub_events, delta.pairs);
        if (sub_window > 0) {
          --sub.credits;
          // The whole return path is priced here, on the agent's shard:
          // delivery leg, client processing (stall-fault scaled), ack leg.
          sim::TimeNs processing = sub_stall;
          if (injector != nullptr && processing > 0) {
            processing = static_cast<sim::TimeNs>(static_cast<double>(processing) *
                                                  injector->stall_factor(sub.client_node, now));
          }
          const sim::TimeNs back =
              cluster.message_delay(sub.client_node, node, 16, now + delay + processing);
          BreakAgent* self = this;
          const SessionId session = sub.session;
          cluster.engine_for_node(node).deliver_at(
              now + delay + processing + back,
              [self, session] { self->return_credit(session); });
        }
      }
    }

    // Merge pending directive programs in (session, seq) order -- the
    // serialization guarantee: whatever order sessions' messages arrived
    // in, the image state equals applying them in session-id order, with
    // the service's own corrections (kServiceSession) last.
    std::stable_sort(pending.begin(), pending.end(),
                     [](const PendingProgram& a, const PendingProgram& b) {
                       return a.session != b.session ? a.session < b.session
                                                     : a.seq < b.seq;
                     });
    WindowReport report;
    vt::FilterProgram program;
    for (PendingProgram& p : pending) {
      program.insert(program.end(), p.program.begin(), p.program.end());
      if (p.ack) report.acks.emplace_back(p.session, p.seq);
    }
    pending.clear();
    if (stop_requested && !stop_staged) {
      program.push_back({/*activate=*/false, sentinel});
      stop_staged = true;
    }
    if (!program.empty()) {
      // Safe to overwrite: the previous confsync ended in a barrier, so
      // every rank has applied the prior staged program already.
      staged->program = program;
      staged->probe_edits.clear();
      ++staged->version;
    }

    report.sync = syncs;
    report.time = now;
    report.window = estimate.window;
    report.measured_fraction = estimate.overhead_fraction();
    report.lines.reserve(estimate.functions.size());
    for (const auto& fe : estimate.functions) {
      report.lines.push_back({fe.fn, fe.pairs, fe.suppressed});
    }
    report.applied = program;
    report.sub_drops = window_drops;

    const std::int64_t bytes = 128 +
                               24 * static_cast<std::int64_t>(report.lines.size()) +
                               16 * static_cast<std::int64_t>(report.acks.size()) +
                               vt::serialized_size(report.applied);
    const sim::TimeNs delay = cluster.message_delay(node, service_node, bytes, now);
    ControlService* svc = &service;
    cluster.engine_for_node(service_node)
        .deliver_at(now + delay, [svc, report] { svc->on_window(report); });

    return kScanCostPerRecord * static_cast<sim::TimeNs>(report.lines.size());
  }
};

// ---------------------------------------------------------------------------
// ControlService
// ---------------------------------------------------------------------------

ControlService::ControlService(dynprof::Launch& launch, dynprof::DynprofTool& tool,
                               ServiceOptions options)
    : launch_(launch),
      tool_(tool),
      cluster_(launch.cluster()),
      engine_(launch.cluster().engine_for_node(tool.tool_thread().process().node())),
      options_(options),
      node_(tool.tool_thread().process().node()),
      agent_node_(launch.job().process(0).node()),
      symbols_(launch.options().app->symbols),
      admission_(symbols_, control::probe_pair_price(launch.vt(0)),
                 AdmissionOptions{options.budget_fraction, options.default_rate_hz}),
      patch_ready_(std::make_unique<sim::Condition>(engine_)) {
  agent_ = std::make_unique<BreakAgent>(*this, cluster_, launch.staged(), agent_node_, node_);
  agent_->sub_window = options.sub_window;
  agent_->sub_stall = options.sub_client_stall;
  BreakAgent* agent = agent_.get();
  launch.vt(0).set_break_handler([agent](vt::VtLib& vt) { return agent->on_break(vt); });
}

ControlService::~ControlService() = default;

void ControlService::register_session(SessionId id, int client_node, ResponseSink responses,
                                      DeltaSink deltas) {
  DT_EXPECT(id != kServiceSession, "session id reserved for the service");
  endpoints_[id] = SessionEndpoint{client_node, std::move(responses), std::move(deltas)};
}

void ControlService::start() {
  DT_EXPECT(!started_, "service already started");
  started_ = true;
  engine_.spawn(patch_loop(), "service.patch", sim::Engine::SpawnOptions{.daemon = true});
}

void ControlService::submit(Request request) {
  telemetry::Registry& reg = telemetry::current();
  reg.add(reg.metrics().service_commands);
  switch (request.kind) {
    case CommandKind::kAttach:
      if (shutting_down_) {
        respond(request, Status::kShutdown);
        return;
      }
      ++active_sessions_;
      reg.set(reg.metrics().service_sessions_active,
              static_cast<std::int64_t>(active_sessions_));
      respond(request, Status::kOk);
      return;
    case CommandKind::kInstrument:
      handle_instrument(request, /*from_queue=*/false);
      return;
    case CommandKind::kConfsync:
      handle_confsync(request);
      return;
    case CommandKind::kSubscribe:
      handle_subscribe(request);
      return;
    case CommandKind::kReport: {
      Response response;
      response.session = request.session;
      response.seq = request.seq;
      response.status = Status::kOk;
      response.projected_fraction = admission_.priced_fraction();
      response.windows = windows_.size();
      send_response(std::move(response));
      return;
    }
    case CommandKind::kDetach:
      handle_detach(request);
      return;
  }
}

int ControlService::session_load(SessionId session) const {
  int load = 0;
  for (const QueuedAdmit& entry : queue_) {
    if (entry.request.session == session) ++load;
  }
  const auto it = patch_pending_.find(session);
  if (it != patch_pending_.end()) load += it->second;
  return load;
}

/// Attempt one admission.  Returns false iff the request was denied and may
/// wait in the queue (nothing responded); any other outcome is resolved.
bool ControlService::try_admit(const Request& request, bool allow_queue,
                               sim::TimeNs deadline) {
  telemetry::Registry& reg = telemetry::current();
  std::vector<image::FunctionId> fns;
  fns.reserve(request.functions.size());
  for (const std::string& name : request.functions) {
    const image::FunctionInfo* info = symbols_->find(name);
    if (info == nullptr) {
      respond(request, Status::kError);
      return true;
    }
    fns.push_back(info->id);
  }
  if (fns.empty()) {
    respond(request, Status::kError);
    return true;
  }

  const AdmitResult result = admission_.admit(request.session, fns);
  if (result.decision == AdmitDecision::kDenied) {
    if (allow_queue) return false;
    reg.add(reg.metrics().service_denials);
    respond(request, Status::kDenied, result.projected_fraction);
    return true;
  }

  const Status status = result.decision == AdmitDecision::kAdmitted ? Status::kAdmitted
                                                                    : Status::kDegraded;
  reg.add(status == Status::kAdmitted ? reg.metrics().service_admits
                                      : reg.metrics().service_degrades);
  if (!result.directives.empty()) stage_service_program(result.directives);
  if (!result.install.empty()) {
    PatchOp op;
    op.install.reserve(result.install.size());
    for (const image::FunctionId fn : result.install) {
      op.install.push_back(symbols_->at(fn).name);
    }
    op.response.session = request.session;
    op.response.seq = request.seq;
    op.response.status = status;
    op.response.projected_fraction = result.projected_fraction;
    op.deadline = deadline;
    enqueue_patch(std::move(op));
  } else {
    // Every requested probe is already installed for another session.
    respond(request, status, result.projected_fraction);
  }
  return true;
}

void ControlService::handle_instrument(const Request& request, bool from_queue) {
  if (shutting_down_) {
    respond(request, Status::kShutdown);
    return;
  }
  telemetry::Registry& reg = telemetry::current();
  // Per-session overload bound: a session with this many commands already
  // deferred (queued or patching) gets an immediate, deterministic kShed
  // instead of growing the backlog.
  if (!from_queue && options_.max_session_inflight > 0 &&
      session_load(request.session) >= options_.max_session_inflight) {
    ++shed_commands_;
    reg.add(reg.metrics().service_shed_commands);
    respond(request, Status::kShed);
    return;
  }
  const sim::TimeNs deadline =
      options_.request_deadline > 0 ? engine_.now() + options_.request_deadline : 0;
  const bool allow_queue = !from_queue && options_.queue_timeout > 0;
  if (!try_admit(request, allow_queue, deadline)) {
    if (options_.max_queue_depth > 0 && queue_.size() >= options_.max_queue_depth) {
      ++shed_commands_;
      reg.add(reg.metrics().service_shed_commands);
      respond(request, Status::kShed, admission_.priced_fraction());
      return;
    }
    reg.add(reg.metrics().service_queued);
    queue_.push_back(QueuedAdmit{request, engine_.now(), deadline});
  }
}

void ControlService::handle_confsync(const Request& request) {
  if (shutting_down_) {
    respond(request, Status::kShutdown);
    return;
  }
  if (request.directives.empty()) {
    respond(request, Status::kOk);
    return;
  }
  // Deferred: the response is the ack the break agent sends once the next
  // safe point has applied this program, so the measured latency includes
  // the wait for the safe point -- the paper's VT_confsync semantics.
  forward_to_agent(request_bytes(request),
                   [session = request.session, seq = request.seq,
                    program = request.directives](BreakAgent& agent) {
                     agent.pending.push_back({session, seq, program, /*ack=*/true});
                   });
}

void ControlService::handle_subscribe(const Request& request) {
  if (shutting_down_) {
    respond(request, Status::kShutdown);
    return;
  }
  const std::vector<image::FunctionId> matched = symbols_->match(request.pattern);
  const auto it = endpoints_.find(request.session);
  if (matched.empty() || it == endpoints_.end() || !it->second.deltas) {
    respond(request, Status::kError);
    return;
  }
  BreakAgent::Subscription sub;
  sub.session = request.session;
  sub.client_node = it->second.client_node;
  sub.credits = options_.sub_window;
  sub.match.assign(symbols_->size(), 0);
  for (const image::FunctionId fn : matched) sub.match[fn] = 1;
  sub.sink = it->second.deltas;
  forward_to_agent(64 + static_cast<std::int64_t>(request.pattern.size()),
                   [sub = std::move(sub)](BreakAgent& agent) {
                     // Keep session-id order so per-window fan-out is
                     // independent of subscription arrival order.
                     auto pos = std::upper_bound(
                         agent.subs.begin(), agent.subs.end(), sub.session,
                         [](SessionId id, const BreakAgent::Subscription& s) {
                           return id < s.session;
                         });
                     agent.subs.insert(pos, sub);
                   });
  respond(request, Status::kOk);
}

void ControlService::handle_detach(const Request& request) {
  const ReleaseResult released = admission_.release(request.session);
  if (!released.directives.empty()) stage_service_program(released.directives);
  if (!released.remove.empty()) {
    PatchOp op;
    for (const image::FunctionId fn : released.remove) {
      op.remove.push_back(symbols_->at(fn).name);
    }
    op.response.session = kServiceSession;  // nobody waits on removals
    enqueue_patch(std::move(op));
  }
  forward_to_agent(64, [session = request.session](BreakAgent& agent) {
    agent.subs.erase(std::remove_if(agent.subs.begin(), agent.subs.end(),
                                    [session](const BreakAgent::Subscription& s) {
                                      return s.session == session;
                                    }),
                     agent.subs.end());
  });
  if (active_sessions_ > 0) --active_sessions_;
  telemetry::Registry& reg = telemetry::current();
  reg.set(reg.metrics().service_sessions_active,
          static_cast<std::int64_t>(active_sessions_));
  respond(request, Status::kOk);
  // A grant release is headroom for whoever waits in the queue.
  retry_queue();
}

void ControlService::on_window(const WindowReport& report) {
  if (report.window > 0) {
    const double seconds = sim::to_seconds(report.window);
    for (const WindowReport::RateLine& line : report.lines) {
      admission_.update_rate(line.fn,
                             static_cast<double>(line.pairs + line.suppressed) / seconds);
    }
  }
  if (!report.applied.empty()) admission_.replay(report.applied);
  sub_drops_ += report.sub_drops;
  const double before = admission_.priced_fraction();
  const ArbitrateResult arbitration = admission_.arbitrate();
  if (!arbitration.directives.empty()) stage_service_program(arbitration.directives);
  if (arbitration.fairshare_flips > 0) {
    fairshare_flips_ += arbitration.fairshare_flips;
    telemetry::Registry& reg = telemetry::current();
    reg.add(reg.metrics().service_fairshare_flips, arbitration.fairshare_flips);
  }

  WindowRecord record;
  record.sync = report.sync;
  record.time = report.time;
  record.window = report.window;
  record.measured_fraction = report.measured_fraction;
  record.priced_before = before;
  record.priced_after = admission_.priced_fraction();
  record.flips = static_cast<std::uint32_t>(arbitration.flipped.size());
  record.at_floor = arbitration.at_floor;
  windows_.push_back(record);

  for (const auto& [session, seq] : report.acks) {
    Response response;
    response.session = session;
    response.seq = seq;
    response.status = Status::kOk;
    send_response(std::move(response));
  }
  retry_queue();
}

void ControlService::retry_queue() {
  if (queue_.empty()) return;
  std::deque<QueuedAdmit> keep;
  while (!queue_.empty()) {
    QueuedAdmit entry = std::move(queue_.front());
    queue_.pop_front();
    if (shutting_down_) {
      respond(entry.request, Status::kShutdown);
      continue;
    }
    // End-to-end deadline: a request still waiting past it is canceled
    // before it can consume budget -- the client has long stopped caring.
    if (entry.deadline > 0 && engine_.now() >= entry.deadline) {
      ++deadline_cancels_;
      telemetry::Registry& reg = telemetry::current();
      reg.add(reg.metrics().service_deadline_cancels);
      respond(entry.request, Status::kCanceled, admission_.priced_fraction());
      continue;
    }
    if (try_admit(entry.request, /*allow_queue=*/true, entry.deadline)) continue;
    if (engine_.now() - entry.enqueued >= options_.queue_timeout) {
      telemetry::Registry& reg = telemetry::current();
      reg.add(reg.metrics().service_denials);
      respond(entry.request, Status::kDenied, admission_.priced_fraction());
    } else {
      keep.push_back(std::move(entry));
    }
  }
  queue_.swap(keep);
}

void ControlService::initiate_shutdown(const std::string& sentinel_function) {
  shutting_down_ = true;
  for (const QueuedAdmit& entry : queue_) respond(entry.request, Status::kShutdown);
  queue_.clear();
  forward_to_agent(64, [sentinel = sentinel_function](BreakAgent& agent) {
    agent.stop_requested = true;
    agent.sentinel = sentinel;
  });
}

void ControlService::stage_service_program(vt::FilterProgram program) {
  if (program.empty()) return;
  const std::int64_t bytes = vt::serialized_size(program);
  forward_to_agent(bytes, [program = std::move(program)](BreakAgent& agent) {
    agent.pending.push_back(
        {kServiceSession, agent.service_seq++, program, /*ack=*/false});
  });
}

void ControlService::respond(const Request& request, Status status, double projected) {
  Response response;
  response.session = request.session;
  response.seq = request.seq;
  response.status = status;
  response.projected_fraction = projected;
  send_response(std::move(response));
}

void ControlService::send_response(Response response) {
  if (response.session == kServiceSession) return;
  const auto it = endpoints_.find(response.session);
  if (it == endpoints_.end() || !it->second.responses) return;
  ++responses_sent_;
  const sim::TimeNs now = engine_.now();
  const sim::TimeNs delay =
      cluster_.message_delay(node_, it->second.client_node, response_bytes(response), now);
  ResponseSink sink = it->second.responses;
  cluster_.engine_for_node(it->second.client_node)
      .deliver_at(now + delay, [sink, response = std::move(response)] { sink(response); });
}

void ControlService::enqueue_patch(PatchOp op) {
  if (op.response.session != kServiceSession) ++patch_pending_[op.response.session];
  patch_queue_.push_back(std::move(op));
  patch_ready_->notify_one();
}

sim::Coro<void> ControlService::patch_loop() {
  while (true) {
    while (patch_queue_.empty()) co_await patch_ready_->wait();
    std::vector<PatchOp> batch(std::make_move_iterator(patch_queue_.begin()),
                               std::make_move_iterator(patch_queue_.end()));
    patch_queue_.clear();

    // Any number of queued edits costs one suspend/patch/resume cycle.  A
    // batch can carry remove->install (detach, then another session re-admits)
    // or install->remove cycles for one function; only the net effect against
    // the tool's current probe state is patched.
    std::vector<std::string> order;
    std::map<std::string, bool> net_install;
    for (const PatchOp& op : batch) {
      for (const std::string& name : op.install) {
        if (net_install.emplace(name, true).second) order.push_back(name);
        net_install[name] = true;
      }
      for (const std::string& name : op.remove) {
        if (net_install.emplace(name, false).second) order.push_back(name);
        net_install[name] = false;
      }
    }
    const std::vector<std::string>& current = tool_.instrumented_functions();
    const auto is_instrumented = [&current](const std::string& name) {
      return std::find(current.begin(), current.end(), name) != current.end();
    };
    std::vector<std::string> installs;
    std::vector<std::string> removes;
    for (const std::string& name : order) {
      if (net_install[name]) {
        if (!is_instrumented(name)) installs.push_back(name);
      } else {
        if (is_instrumented(name)) removes.push_back(name);
      }
    }

    if (!installs.empty()) co_await tool_.insert_functions(installs);
    if (!removes.empty()) co_await tool_.remove_functions(removes);
    const dpcl::DpclApplication* app = tool_.application();

    // Daemon death: every response from the patch path names the lost
    // nodes, never hangs.  Not just on growth during this batch -- the
    // loss may land on a response-less batch (a detach-driven removal),
    // and any later grant is equally incomplete: its probes cannot reach
    // the lost ranks.
    std::vector<int> lost;
    if (app != nullptr && !app->lost_nodes().empty()) {
      lost.assign(app->lost_nodes().begin(), app->lost_nodes().end());
    }
    telemetry::Registry& reg = telemetry::current();
    for (PatchOp& op : batch) {
      if (op.response.session == kServiceSession) continue;
      const auto pending = patch_pending_.find(op.response.session);
      if (pending != patch_pending_.end() && --pending->second <= 0) {
        patch_pending_.erase(pending);
      }
      if (!lost.empty()) {
        op.response.status = Status::kDaemonLost;
        op.response.lost_nodes = lost;
        reg.add(reg.metrics().service_daemon_lost_errors);
      } else if (op.deadline > 0 && engine_.now() > op.deadline) {
        // The batch landed past the request's end-to-end deadline (the
        // probes stay -- the grant is real until detach -- but the client's
        // wait is resolved with an explicit cancel, not silence).
        op.response.status = Status::kCanceled;
        ++deadline_cancels_;
        reg.add(reg.metrics().service_deadline_cancels);
      }
      send_response(std::move(op.response));
    }
  }
}

void ControlService::forward_to_agent(std::int64_t bytes,
                                      std::function<void(BreakAgent&)> mutate) {
  BreakAgent* agent = agent_.get();
  const sim::TimeNs now = engine_.now();
  const sim::TimeNs delay = cluster_.message_delay(node_, agent_node_, bytes, now);
  cluster_.engine_for_node(agent_node_)
      .deliver_at(now + delay, [agent, mutate = std::move(mutate)] { mutate(*agent); });
}

}  // namespace dyntrace::service
