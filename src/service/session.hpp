// Wire types of the multi-tenant control service (DESIGN.md §13).
//
// A session is one simulated interactive user attached to a shared target
// job.  Sessions talk to the ControlService with Request/Response pairs
// correlated by (session, seq); every message crosses the cluster as a
// sized payload through Cluster::message_delay, so command latency is the
// paper's daemon-dispatch physics, not a host artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "image/symbols.hpp"
#include "vt/filter.hpp"

namespace dyntrace::service {

using SessionId = std::uint32_t;

/// Sentinel session id for directives the service itself stages (admission
/// degrades, budget arbitration flips).  Sorts after every real session, so
/// the service's corrections are applied last at each safe point.
inline constexpr SessionId kServiceSession = 0xffffffffu;

enum class CommandKind : std::uint8_t {
  kAttach = 0,     ///< open the session
  kInstrument,     ///< request probes on a function set (admission-priced)
  kConfsync,       ///< stage filter directives for the next safe point
  kSubscribe,      ///< register a pushed-down event subscription
  kReport,         ///< query service state (immediate)
  kDetach,         ///< close the session, releasing its grants
};

enum class Status : std::uint8_t {
  kOk = 0,
  kAdmitted,    ///< instrument: granted fully active (Dynamic rung)
  kDegraded,    ///< instrument: granted filter-deactivated (Subset rung)
  kDenied,      ///< instrument: would not fit the budget (None rung)
  kError,       ///< malformed request (unknown function, bad pattern, ...)
  kDaemonLost,  ///< the patch hit nodes whose daemon died; see lost_nodes
  kShutdown,    ///< the service is shutting down
  kTimeout,     ///< driver-local: no response before the deadline
  kShed,        ///< overload: a bounded queue was full, command dropped
  kCanceled,    ///< the end-to-end request deadline expired in the service
};

const char* to_string(CommandKind kind);
const char* to_string(Status status);

struct Request {
  SessionId session = 0;
  std::uint32_t seq = 0;
  CommandKind kind = CommandKind::kAttach;
  /// kInstrument: requested function names.
  std::vector<std::string> functions;
  /// kConfsync: directives to stage at the next safe point.
  vt::FilterProgram directives;
  /// kSubscribe: glob over function names; only matching functions' events
  /// are pushed to this session.
  std::string pattern;
  /// Where the response goes.
  int client_node = 0;
};

struct Response {
  SessionId session = 0;
  std::uint32_t seq = 0;
  Status status = Status::kOk;
  /// kInstrument: the admission controller's projected per-process
  /// overhead fraction after the grant.
  double projected_fraction = 0.0;
  /// kDaemonLost: nodes whose daemon died during the patch.
  std::vector<int> lost_nodes;
  /// kReport: windows observed so far.
  std::uint64_t windows = 0;
};

/// One pushed subscription delta: the per-window activity of the functions
/// a session subscribed to, fanned out from rank 0's statistics reduction.
struct SubscriptionDelta {
  SessionId session = 0;
  std::uint64_t sync = 0;       ///< safe-point index the delta describes
  std::uint32_t functions = 0;  ///< subscribed functions active this window
  std::uint64_t pairs = 0;      ///< completed + suppressed pairs across them
};

/// Marshalled sizes (what the cluster charges for the transfer).
std::int64_t request_bytes(const Request& request);
std::int64_t response_bytes(const Response& response);
inline constexpr std::int64_t kDeltaBytes = 48;

}  // namespace dyntrace::service
