#include "service/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "control/overlay.hpp"
#include "sim/mailbox.hpp"
#include "support/common.hpp"
#include "support/strings.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::service {

namespace {

constexpr const char* kSentinelName = "svcapp_run";

/// Hard iteration ceiling: every rank hits it at the same iteration, so
/// even a broken shutdown path ends collectively instead of spinning the
/// engine forever.
constexpr std::int64_t kMaxIterations = 200'000;

std::string fn_name(int index) { return str::format("svc_fn_%02d", index); }

sim::Coro<void> svcapp_body(asci::AppContext& ctx, proc::SimThread& thread,
                            const std::vector<std::string>& names) {
  vt::VtLib* vt = ctx.vt();
  const image::FunctionId sentinel = ctx.fid(kSentinelName);
  Rng& rng = ctx.rng();
  const int fns = static_cast<int>(names.size());

  for (std::int64_t iter = 0; iter < kMaxIterations; ++iter) {
    // The iteration's bulk numerics...
    co_await thread.compute(
        sim::nanoseconds(rng.normal_at_least(400e3, 40e3, 50e3)));
    // ...and a rotating window of hot leaves over the function inventory,
    // so every function eventually accumulates observable call rates.
    for (int k = 0; k < 4 && fns > 0; ++k) {
      const int idx = static_cast<int>((iter * 4 + k) % fns);
      const auto work =
          sim::nanoseconds(rng.normal_at_least(2'000, 300, 200));
      co_await ctx.leaf_repeat(thread, names[static_cast<std::size_t>(idx)], 48, work);
    }
    if (ctx.mpi() != nullptr && ctx.nprocs() > 1) {
      co_await ctx.mpi()->allreduce(thread, 8);
    }
    co_await ctx.safe_point(thread);
    // Collective shutdown: the service deactivates the sentinel through a
    // staged filter directive; VT_confsync applies it on every rank at the
    // same safe point, so the whole job leaves the loop at one iteration.
    if (vt != nullptr && vt->filter().deactivated(sentinel)) break;
  }
}

// --- FNV-1a digest helpers ---------------------------------------------------

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t quantize(double fraction) {
  return static_cast<std::uint64_t>(std::llround(fraction * 1e12));
}

// --- session drivers ---------------------------------------------------------

// One driver coroutine serves a *batch* of sessions sequentially (batch 1 =
// the legacy one-coroutine-per-session shape).  Batching keeps the harness
// memory flat in the session count -- 100k sessions need only
// 100k/session_batch coroutines, mailboxes and triggers -- at the price of
// serializing the sessions inside one batch.
struct Driver {
  int node = 0;
  sim::Engine* engine = nullptr;
  std::unique_ptr<sim::Trigger> start;
  std::unique_ptr<sim::Mailbox<Response>> inbox;
  /// Storm drivers: absolute gate time from the fault plan (0 = the normal
  /// staggered gate).
  sim::TimeNs gate_at = 0;
  struct Entry {
    SessionId id = 0;
    std::vector<Request> script;
    ScenarioResult::SessionOutcome outcome;
  };
  std::vector<Entry> entries;
};

struct Coordinator {
  std::size_t remaining = 0;
  std::unique_ptr<sim::Trigger> all_done;

  void note_done() {
    DT_ASSERT(remaining > 0, "coordinator completion underflow");
    if (--remaining == 0) all_done->fire();
  }
};

// Drive one session's script.  Up to `pipeline_depth` commands stay in
// flight (depth 1 reproduces the legacy lock-step driver exactly); the
// detach drains the window first so grants release only after the script's
// real work resolved.  A timed-out or shutdown-refused session skips ahead
// to its detach so the run still drains.
sim::Coro<void> drive_session(Driver& d, Driver::Entry& entry, ControlService& svc,
                              machine::Cluster& cluster, sim::TimeNs response_timeout,
                              int pipeline_depth) {
  telemetry::Registry& reg = telemetry::current();
  const std::size_t depth = static_cast<std::size_t>(std::max(1, pipeline_depth));
  std::uint32_t seq = 0;
  bool bail = false;
  struct Pending {
    std::size_t index = 0;
    sim::TimeNs sent = 0;
  };
  std::map<std::uint32_t, Pending> outstanding;
  std::map<std::size_t, ScenarioResult::CommandOutcome> results;

  const auto resolve = [&](std::uint32_t which, Status status, sim::TimeNs now) {
    const auto it = outstanding.find(which);
    if (it == outstanding.end()) return;  // stale or duplicate response
    ScenarioResult::CommandOutcome out;
    out.kind = entry.script[it->second.index].kind;
    out.status = status;
    out.latency = now - it->second.sent;
    results.emplace(it->second.index, out);
    reg.observe(reg.metrics().service_command_latency_ns,
                static_cast<std::uint64_t>(out.latency));
    if (status == Status::kTimeout || status == Status::kShutdown) bail = true;
    outstanding.erase(it);
  };

  std::size_t next = 0;
  const std::size_t total = entry.script.size();
  while (next < total || !outstanding.empty()) {
    while (next < total && outstanding.size() < depth) {
      const Request& templ = entry.script[next];
      if (bail && templ.kind != CommandKind::kDetach) {
        ++next;
        continue;
      }
      if (templ.kind == CommandKind::kDetach && !outstanding.empty()) break;
      Request request = templ;
      request.session = entry.id;
      request.seq = ++seq;
      request.client_node = d.node;
      const sim::TimeNs sent = d.engine->now();
      const sim::TimeNs delay =
          cluster.message_delay(d.node, svc.node(), request_bytes(request), sent);
      ControlService* service = &svc;
      svc.engine().deliver_at(sent + delay,
                              [service, request] { service->submit(request); });
      outstanding.emplace(seq, Pending{next, sent});
      ++next;
    }
    if (outstanding.empty()) continue;  // everything left was skipped

    // Wait for a response or the earliest outstanding command's deadline.
    sim::TimeNs earliest = 0;
    std::uint32_t earliest_seq = 0;
    for (const auto& [s, pending] : outstanding) {
      const sim::TimeNs deadline = pending.sent + response_timeout;
      if (earliest == 0 || deadline < earliest) {
        earliest = deadline;
        earliest_seq = s;
      }
    }
    const sim::TimeNs now = d.engine->now();
    if (now >= earliest) {
      resolve(earliest_seq, Status::kTimeout, now);
      continue;
    }
    std::optional<Response> response = co_await d.inbox->recv_for(earliest - now);
    if (!response.has_value()) {
      resolve(earliest_seq, Status::kTimeout, d.engine->now());
      continue;
    }
    if (response->session != entry.id) continue;  // another batch entry's late ack
    resolve(response->seq, response->status, d.engine->now());
  }

  entry.outcome.commands.reserve(results.size());
  for (const auto& [index, out] : results) entry.outcome.commands.push_back(out);
}

sim::Coro<void> session_coro(Driver& d, ControlService& svc, machine::Cluster& cluster,
                             sim::TimeNs response_timeout, int pipeline_depth,
                             Coordinator& coord) {
  co_await d.start->wait();
  for (Driver::Entry& entry : d.entries) {
    co_await drive_session(d, entry, svc, cluster, response_timeout, pipeline_depth);
  }

  // Tell the coordinator (on the service's shard) this batch is done.
  const sim::TimeNs now = d.engine->now();
  const sim::TimeNs delay = cluster.message_delay(d.node, svc.node(), 64, now);
  Coordinator* c = &coord;
  svc.engine().deliver_at(now + delay, [c] { c->note_done(); });
}

sim::Coro<void> scenario_main(dynprof::DynprofTool& tool, ControlService& svc,
                              machine::Cluster& cluster, std::vector<std::unique_ptr<Driver>>& drivers,
                              sim::TimeNs stagger, Coordinator& coord) {
  co_await tool.attached().wait();
  svc.start();

  // Open the session start gates, staggered, each fired on its driver's own
  // shard (Trigger::fire with waiters must run shard-locally).  Storm
  // drivers carry an absolute gate time from the fault plan instead: the
  // whole burst is admitted at that instant (or as soon as the attachment
  // is up, whichever is later).
  const sim::TimeNs now = svc.engine().now();
  std::size_t staggered = 0;
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    Driver* d = drivers[i].get();
    const sim::TimeNs delay = cluster.message_delay(svc.node(), d->node, 64, now);
    const sim::TimeNs at =
        d->gate_at > 0
            ? std::max(d->gate_at, now + delay)
            : now + delay + static_cast<sim::TimeNs>(staggered++) * stagger;
    cluster.engine_for_node(d->node).deliver_at(at, [d] { d->start->fire(); });
  }

  co_await coord.all_done->wait();
  svc.initiate_shutdown(kSentinelName);
  tool.request_detach();
}

std::vector<Request> generate_script(Rng& rng, int functions, int commands) {
  std::vector<Request> script;
  script.reserve(static_cast<std::size_t>(commands));
  for (int c = 0; c < commands; ++c) {
    Request request;
    switch (rng.next_below(4)) {
      case 0: {
        request.kind = CommandKind::kInstrument;
        const int n = 1 + static_cast<int>(rng.next_below(3));
        for (int k = 0; k < n; ++k) {
          request.functions.push_back(
              fn_name(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(functions)))));
        }
        break;
      }
      case 1: {
        request.kind = CommandKind::kSubscribe;
        const int decades = (functions + 9) / 10;
        request.pattern = str::format(
            "svc_fn_%d*", static_cast<int>(rng.next_below(static_cast<std::uint64_t>(decades))));
        break;
      }
      case 2: {
        request.kind = CommandKind::kConfsync;
        request.directives.push_back(
            {rng.next_below(2) == 0,
             fn_name(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(functions))))});
        break;
      }
      default:
        request.kind = CommandKind::kReport;
        break;
    }
    script.push_back(std::move(request));
  }
  return script;
}

}  // namespace

const char* scenario_sentinel() { return kSentinelName; }

asci::AppSpec make_svcapp(int functions) {
  auto symbols = std::make_shared<image::SymbolTable>();
  symbols->add("main", "svcapp.c");
  symbols->add("MPI_Init", "libmpi");
  symbols->add("MPI_Finalize", "libmpi");
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(functions));
  for (int i = 0; i < functions; ++i) {
    names.push_back(fn_name(i));
    symbols->add(names.back(), str::format("svc_mod_%d.c", i / 8));
  }
  symbols->add(kSentinelName, "svcapp.c");

  asci::AppSpec spec;
  spec.name = "svcapp";
  spec.language = "MPI/C";
  spec.description = "Synthetic service-target application (open-ended iteration loop)";
  spec.model = asci::AppSpec::Model::kMpi;
  spec.scaling = asci::AppSpec::Scaling::kWeak;
  spec.min_procs = 1;
  spec.max_procs = 1024;
  spec.symbols = symbols;
  spec.body = [names](asci::AppContext& ctx, proc::SimThread& thread) {
    return svcapp_body(ctx, thread, names);
  };
  return spec;
}

ScenarioResult run_scenario(const ScenarioOptions& options) {
  const auto host_start = std::chrono::steady_clock::now();

  const asci::AppSpec app = make_svcapp(options.functions);
  dynprof::Launch::Options lo;
  lo.app = &app;
  lo.params.nprocs = options.ranks;
  lo.params.problem_scale = options.problem_scale;
  lo.params.seed = options.seed;
  lo.params.confsync_interval = options.confsync_interval;
  lo.params.confsync_statistics = true;
  lo.policy = dynprof::Policy::kDynamic;
  lo.sim_threads = options.sim_threads;
  lo.fault = options.fault;
  lo.telemetry_level = options.telemetry_level;
  dynprof::Launch launch(lo);

  // Statistics reduce through the overlay tree to rank 0 -- the fan-out
  // root the break agent reads.
  auto overlay = std::make_shared<control::StatsOverlay>(4);
  overlay->prepare(launch.process_count());
  overlay->set_job(launch.job_name());
  for (int pid = 0; pid < launch.process_count(); ++pid) {
    launch.vt(pid).set_stats_aggregator(overlay);
  }

  dynprof::DynprofTool tool(launch, dynprof::DynprofTool::Options{});
  ControlService service(launch, tool, options.service);
  machine::Cluster& cluster = launch.cluster();

  const bool scripted = !options.scripted_sessions.empty();
  const std::size_t session_count =
      scripted ? options.scripted_sessions.size() : static_cast<std::size_t>(options.sessions);

  // Client nodes sit above the tool node, reused round-robin; a machine too
  // small for any client node co-locates the drivers with the service.
  const int tool_node = service.node();
  const int first_client = tool_node + 1;
  const int avail = cluster.spec().nodes - first_client;
  const int client_nodes = std::min(options.session_nodes, std::max(avail, 0));

  // Storm actions in the fault plan burst-admit extra generated sessions at
  // a fixed time, after the configured ones.
  std::vector<std::pair<sim::TimeNs, int>> storms;
  if (options.fault != nullptr) storms = options.fault->storms();
  std::size_t storm_count = 0;
  for (const auto& [at, n] : storms) storm_count += static_cast<std::size_t>(n);

  const int batch = std::max(1, options.session_batch);
  std::vector<std::unique_ptr<Driver>> drivers;
  drivers.reserve((session_count + static_cast<std::size_t>(batch) - 1) /
                      static_cast<std::size_t>(batch) +
                  storm_count);

  const auto make_script = [&](std::size_t id) {
    std::vector<Request> script;
    script.push_back(Request{.kind = CommandKind::kAttach});
    if (scripted && id < options.scripted_sessions.size()) {
      const std::vector<Request>& body = options.scripted_sessions[id];
      script.insert(script.end(), body.begin(), body.end());
    } else {
      Rng rng(options.seed ^ (0x9e3779b97f4a7c15ull * (id + 1)));
      std::vector<Request> body =
          generate_script(rng, options.functions, options.commands_per_session);
      script.insert(script.end(), std::make_move_iterator(body.begin()),
                    std::make_move_iterator(body.end()));
    }
    script.push_back(Request{.kind = CommandKind::kDetach});
    return script;
  };

  const auto make_driver = [&](std::size_t driver_index, std::size_t first_id,
                               std::size_t count, sim::TimeNs gate_at) {
    auto driver = std::make_unique<Driver>();
    driver->node = client_nodes > 0
                       ? first_client + static_cast<int>(driver_index) % client_nodes
                       : tool_node;
    driver->engine = &cluster.engine_for_node(driver->node);
    driver->start = std::make_unique<sim::Trigger>(*driver->engine);
    driver->inbox = std::make_unique<sim::Mailbox<Response>>(*driver->engine);
    driver->gate_at = gate_at;
    driver->entries.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      Driver::Entry entry;
      entry.id = static_cast<SessionId>(first_id + k);
      entry.script = make_script(first_id + k);
      entry.outcome.id = entry.id;
      entry.outcome.node = driver->node;
      driver->entries.push_back(std::move(entry));
    }
    // Entries are stable from here on (the vector is never resized), so the
    // sinks can capture entry pointers.
    for (Driver::Entry& entry : driver->entries) {
      Driver::Entry* e = &entry;
      Driver* d = driver.get();
      service.register_session(
          e->id, d->node, [d](const Response& response) { d->inbox->put(response); },
          [e](const SubscriptionDelta& delta) {
            ++e->outcome.deltas;
            e->outcome.delta_pairs += delta.pairs;
          });
    }
    drivers.push_back(std::move(driver));
  };

  std::size_t driver_index = 0;
  for (std::size_t first = 0; first < session_count;
       first += static_cast<std::size_t>(batch)) {
    const std::size_t count =
        std::min(static_cast<std::size_t>(batch), session_count - first);
    make_driver(driver_index++, first, count, /*gate_at=*/0);
  }
  std::size_t storm_id = session_count;
  for (const auto& [at, n] : storms) {
    for (int k = 0; k < n; ++k) {
      make_driver(driver_index++, storm_id++, 1, /*gate_at=*/at);
    }
  }

  Coordinator coord;
  coord.remaining = drivers.size();
  coord.all_done = std::make_unique<sim::Trigger>(service.engine());

  tool.start_service();
  for (const std::unique_ptr<Driver>& driver : drivers) {
    Driver* d = driver.get();
    d->engine->spawn(
        session_coro(*d, service, cluster, options.response_timeout,
                     options.pipeline_depth, coord),
        str::format("svc.session.%u", d->entries.front().id));
  }
  service.engine().spawn(scenario_main(tool, service, cluster, drivers,
                                       options.session_stagger, coord),
                         "svc.scenario");

  launch.run_engine();

  // --- collect -------------------------------------------------------------
  ScenarioResult result;
  result.storm_sessions = storm_count;
  result.sessions.reserve(session_count + storm_count);
  for (const std::unique_ptr<Driver>& driver : drivers) {
    for (const Driver::Entry& entry : driver->entries) {
      result.sessions.push_back(entry.outcome);
      for (const ScenarioResult::CommandOutcome& out : entry.outcome.commands) {
        ++result.status_counts[out.status];
        ++result.commands;
        result.latencies.push_back(out.latency);
      }
    }
  }
  result.shed_commands = service.shed_commands();
  result.deadline_cancels = service.deadline_cancels();
  result.fairshare_flips = service.fairshare_flips();
  result.sub_drops = service.sub_drops();
  result.windows = service.windows();
  const double budget = service.admission().options().budget_fraction;
  for (const WindowRecord& window : result.windows) {
    if (window.priced_after > budget + 1e-9 && !window.at_floor) {
      result.budget_ok = false;
      ++result.budget_violations;
    }
  }
  for (image::FunctionId fn = 0; fn < launch.options().app->symbols->size(); ++fn) {
    if (launch.vt(0).filter().deactivated(fn)) result.rank0_deactivated.push_back(fn);
  }
  if (tool.application() != nullptr) result.lost_ranks = tool.application()->lost_pids();
  result.sim_seconds = launch.collect_result().total_seconds;
  result.stats_digest = vt::stats_digest(launch.vt(0).statistics());

  std::uint64_t h = kFnvOffset;
  for (const ScenarioResult::SessionOutcome& session : result.sessions) {
    h = mix(h, session.id);
    h = mix(h, static_cast<std::uint64_t>(session.node));
    for (const ScenarioResult::CommandOutcome& out : session.commands) {
      h = mix(h, static_cast<std::uint64_t>(out.kind));
      h = mix(h, static_cast<std::uint64_t>(out.status));
      h = mix(h, static_cast<std::uint64_t>(out.latency));
    }
    h = mix(h, session.deltas);
    h = mix(h, session.delta_pairs);
  }
  for (const WindowRecord& window : result.windows) {
    h = mix(h, window.sync);
    h = mix(h, static_cast<std::uint64_t>(window.time));
    h = mix(h, static_cast<std::uint64_t>(window.window));
    h = mix(h, quantize(window.measured_fraction));
    h = mix(h, quantize(window.priced_before));
    h = mix(h, quantize(window.priced_after));
    h = mix(h, window.flips);
    h = mix(h, window.at_floor ? 1 : 0);
  }
  for (const image::FunctionId fn : result.rank0_deactivated) h = mix(h, fn);
  for (const int pid : result.lost_ranks) h = mix(h, static_cast<std::uint64_t>(pid));
  h = mix(h, service.responses_sent());
  h = mix(h, result.shed_commands);
  h = mix(h, result.deadline_cancels);
  h = mix(h, result.fairshare_flips);
  h = mix(h, result.sub_drops);
  h = mix(h, result.stats_digest);
  result.digest = h;

  result.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host_start).count();
  return result;
}

}  // namespace dyntrace::service
