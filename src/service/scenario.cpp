#include "service/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "control/overlay.hpp"
#include "sim/mailbox.hpp"
#include "support/common.hpp"
#include "support/strings.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::service {

namespace {

constexpr const char* kSentinelName = "svcapp_run";

/// Hard iteration ceiling: every rank hits it at the same iteration, so
/// even a broken shutdown path ends collectively instead of spinning the
/// engine forever.
constexpr std::int64_t kMaxIterations = 200'000;

std::string fn_name(int index) { return str::format("svc_fn_%02d", index); }

sim::Coro<void> svcapp_body(asci::AppContext& ctx, proc::SimThread& thread,
                            const std::vector<std::string>& names) {
  vt::VtLib* vt = ctx.vt();
  const image::FunctionId sentinel = ctx.fid(kSentinelName);
  Rng& rng = ctx.rng();
  const int fns = static_cast<int>(names.size());

  for (std::int64_t iter = 0; iter < kMaxIterations; ++iter) {
    // The iteration's bulk numerics...
    co_await thread.compute(
        sim::nanoseconds(rng.normal_at_least(400e3, 40e3, 50e3)));
    // ...and a rotating window of hot leaves over the function inventory,
    // so every function eventually accumulates observable call rates.
    for (int k = 0; k < 4 && fns > 0; ++k) {
      const int idx = static_cast<int>((iter * 4 + k) % fns);
      const auto work =
          sim::nanoseconds(rng.normal_at_least(2'000, 300, 200));
      co_await ctx.leaf_repeat(thread, names[static_cast<std::size_t>(idx)], 48, work);
    }
    if (ctx.mpi() != nullptr && ctx.nprocs() > 1) {
      co_await ctx.mpi()->allreduce(thread, 8);
    }
    co_await ctx.safe_point(thread);
    // Collective shutdown: the service deactivates the sentinel through a
    // staged filter directive; VT_confsync applies it on every rank at the
    // same safe point, so the whole job leaves the loop at one iteration.
    if (vt != nullptr && vt->filter().deactivated(sentinel)) break;
  }
}

// --- FNV-1a digest helpers ---------------------------------------------------

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t quantize(double fraction) {
  return static_cast<std::uint64_t>(std::llround(fraction * 1e12));
}

// --- session drivers ---------------------------------------------------------

struct Driver {
  SessionId id = 0;
  int node = 0;
  sim::Engine* engine = nullptr;
  std::unique_ptr<sim::Trigger> start;
  std::unique_ptr<sim::Mailbox<Response>> inbox;
  std::vector<Request> script;
  ScenarioResult::SessionOutcome outcome;
};

struct Coordinator {
  std::size_t remaining = 0;
  std::unique_ptr<sim::Trigger> all_done;

  void note_done() {
    DT_ASSERT(remaining > 0, "coordinator completion underflow");
    if (--remaining == 0) all_done->fire();
  }
};

sim::Coro<void> session_coro(Driver& d, ControlService& svc, machine::Cluster& cluster,
                             sim::TimeNs response_timeout, Coordinator& coord) {
  co_await d.start->wait();
  telemetry::Registry& reg = telemetry::current();
  std::uint32_t seq = 0;
  bool bail = false;
  for (const Request& entry : d.script) {
    // A timed-out or shutdown-refused session skips ahead to its detach so
    // grants are still released and the run drains.
    if (bail && entry.kind != CommandKind::kDetach) continue;
    Request request = entry;
    request.session = d.id;
    request.seq = ++seq;
    request.client_node = d.node;

    const sim::TimeNs sent = d.engine->now();
    const sim::TimeNs delay =
        cluster.message_delay(d.node, svc.node(), request_bytes(request), sent);
    ControlService* service = &svc;
    svc.engine().deliver_at(sent + delay,
                            [service, request] { service->submit(request); });

    ScenarioResult::CommandOutcome out;
    out.kind = request.kind;
    out.status = Status::kTimeout;
    const sim::TimeNs deadline = sent + response_timeout;
    while (true) {
      const sim::TimeNs now = d.engine->now();
      if (now >= deadline) break;
      std::optional<Response> response = co_await d.inbox->recv_for(deadline - now);
      if (!response.has_value()) break;
      // Drop stale responses (e.g. a late ack for a command that already
      // timed out); only the current seq resolves this command.
      if (response->session != d.id || response->seq != seq) continue;
      out.status = response->status;
      break;
    }
    out.latency = d.engine->now() - sent;
    d.outcome.commands.push_back(out);
    reg.observe(reg.metrics().service_command_latency_ns,
                static_cast<std::uint64_t>(out.latency));
    if (out.status == Status::kTimeout || out.status == Status::kShutdown) bail = true;
  }

  // Tell the coordinator (on the service's shard) this session is done.
  const sim::TimeNs now = d.engine->now();
  const sim::TimeNs delay = cluster.message_delay(d.node, svc.node(), 64, now);
  Coordinator* c = &coord;
  svc.engine().deliver_at(now + delay, [c] { c->note_done(); });
}

sim::Coro<void> scenario_main(dynprof::DynprofTool& tool, ControlService& svc,
                              machine::Cluster& cluster, std::vector<std::unique_ptr<Driver>>& drivers,
                              sim::TimeNs stagger, Coordinator& coord) {
  co_await tool.attached().wait();
  svc.start();

  // Open the session start gates, staggered, each fired on its driver's own
  // shard (Trigger::fire with waiters must run shard-locally).
  const sim::TimeNs now = svc.engine().now();
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    Driver* d = drivers[i].get();
    const sim::TimeNs delay = cluster.message_delay(svc.node(), d->node, 64, now);
    const sim::TimeNs at = now + delay + static_cast<sim::TimeNs>(i) * stagger;
    cluster.engine_for_node(d->node).deliver_at(at, [d] { d->start->fire(); });
  }

  co_await coord.all_done->wait();
  svc.initiate_shutdown(kSentinelName);
  tool.request_detach();
}

std::vector<Request> generate_script(Rng& rng, int functions, int commands) {
  std::vector<Request> script;
  script.reserve(static_cast<std::size_t>(commands));
  for (int c = 0; c < commands; ++c) {
    Request request;
    switch (rng.next_below(4)) {
      case 0: {
        request.kind = CommandKind::kInstrument;
        const int n = 1 + static_cast<int>(rng.next_below(3));
        for (int k = 0; k < n; ++k) {
          request.functions.push_back(
              fn_name(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(functions)))));
        }
        break;
      }
      case 1: {
        request.kind = CommandKind::kSubscribe;
        const int decades = (functions + 9) / 10;
        request.pattern = str::format(
            "svc_fn_%d*", static_cast<int>(rng.next_below(static_cast<std::uint64_t>(decades))));
        break;
      }
      case 2: {
        request.kind = CommandKind::kConfsync;
        request.directives.push_back(
            {rng.next_below(2) == 0,
             fn_name(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(functions))))});
        break;
      }
      default:
        request.kind = CommandKind::kReport;
        break;
    }
    script.push_back(std::move(request));
  }
  return script;
}

}  // namespace

const char* scenario_sentinel() { return kSentinelName; }

asci::AppSpec make_svcapp(int functions) {
  auto symbols = std::make_shared<image::SymbolTable>();
  symbols->add("main", "svcapp.c");
  symbols->add("MPI_Init", "libmpi");
  symbols->add("MPI_Finalize", "libmpi");
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(functions));
  for (int i = 0; i < functions; ++i) {
    names.push_back(fn_name(i));
    symbols->add(names.back(), str::format("svc_mod_%d.c", i / 8));
  }
  symbols->add(kSentinelName, "svcapp.c");

  asci::AppSpec spec;
  spec.name = "svcapp";
  spec.language = "MPI/C";
  spec.description = "Synthetic service-target application (open-ended iteration loop)";
  spec.model = asci::AppSpec::Model::kMpi;
  spec.scaling = asci::AppSpec::Scaling::kWeak;
  spec.min_procs = 1;
  spec.max_procs = 1024;
  spec.symbols = symbols;
  spec.body = [names](asci::AppContext& ctx, proc::SimThread& thread) {
    return svcapp_body(ctx, thread, names);
  };
  return spec;
}

ScenarioResult run_scenario(const ScenarioOptions& options) {
  const auto host_start = std::chrono::steady_clock::now();

  const asci::AppSpec app = make_svcapp(options.functions);
  dynprof::Launch::Options lo;
  lo.app = &app;
  lo.params.nprocs = options.ranks;
  lo.params.problem_scale = options.problem_scale;
  lo.params.seed = options.seed;
  lo.params.confsync_interval = options.confsync_interval;
  lo.params.confsync_statistics = true;
  lo.policy = dynprof::Policy::kDynamic;
  lo.sim_threads = options.sim_threads;
  lo.fault = options.fault;
  lo.telemetry_level = options.telemetry_level;
  dynprof::Launch launch(lo);

  // Statistics reduce through the overlay tree to rank 0 -- the fan-out
  // root the break agent reads.
  auto overlay = std::make_shared<control::StatsOverlay>(4);
  overlay->prepare(launch.process_count());
  for (int pid = 0; pid < launch.process_count(); ++pid) {
    launch.vt(pid).set_stats_aggregator(overlay);
  }

  dynprof::DynprofTool tool(launch, dynprof::DynprofTool::Options{});
  ControlService service(launch, tool, options.service);
  machine::Cluster& cluster = launch.cluster();

  const bool scripted = !options.scripted_sessions.empty();
  const std::size_t session_count =
      scripted ? options.scripted_sessions.size() : static_cast<std::size_t>(options.sessions);

  // Client nodes sit above the tool node, reused round-robin; a machine too
  // small for any client node co-locates the drivers with the service.
  const int tool_node = service.node();
  const int first_client = tool_node + 1;
  const int avail = cluster.spec().nodes - first_client;
  const int client_nodes = std::min(options.session_nodes, std::max(avail, 0));

  std::vector<std::unique_ptr<Driver>> drivers;
  drivers.reserve(session_count);
  Coordinator coord;
  coord.remaining = session_count;
  coord.all_done = std::make_unique<sim::Trigger>(service.engine());

  for (std::size_t i = 0; i < session_count; ++i) {
    auto driver = std::make_unique<Driver>();
    driver->id = static_cast<SessionId>(i);
    driver->node = client_nodes > 0
                       ? first_client + static_cast<int>(i) % client_nodes
                       : tool_node;
    driver->engine = &cluster.engine_for_node(driver->node);
    driver->start = std::make_unique<sim::Trigger>(*driver->engine);
    driver->inbox = std::make_unique<sim::Mailbox<Response>>(*driver->engine);
    driver->outcome.id = driver->id;
    driver->outcome.node = driver->node;

    driver->script.push_back(Request{.kind = CommandKind::kAttach});
    if (scripted) {
      const std::vector<Request>& body = options.scripted_sessions[i];
      driver->script.insert(driver->script.end(), body.begin(), body.end());
    } else {
      Rng rng(options.seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
      std::vector<Request> body =
          generate_script(rng, options.functions, options.commands_per_session);
      driver->script.insert(driver->script.end(),
                            std::make_move_iterator(body.begin()),
                            std::make_move_iterator(body.end()));
    }
    driver->script.push_back(Request{.kind = CommandKind::kDetach});

    Driver* d = driver.get();
    service.register_session(
        d->id, d->node, [d](const Response& response) { d->inbox->put(response); },
        [d](const SubscriptionDelta& delta) {
          ++d->outcome.deltas;
          d->outcome.delta_pairs += delta.pairs;
        });
    drivers.push_back(std::move(driver));
  }

  tool.start_service();
  for (const std::unique_ptr<Driver>& driver : drivers) {
    Driver* d = driver.get();
    d->engine->spawn(
        session_coro(*d, service, cluster, options.response_timeout, coord),
        str::format("svc.session.%u", d->id));
  }
  service.engine().spawn(scenario_main(tool, service, cluster, drivers,
                                       options.session_stagger, coord),
                         "svc.scenario");

  launch.run_engine();

  // --- collect -------------------------------------------------------------
  ScenarioResult result;
  result.sessions.reserve(drivers.size());
  for (const std::unique_ptr<Driver>& driver : drivers) {
    result.sessions.push_back(driver->outcome);
    for (const ScenarioResult::CommandOutcome& out : driver->outcome.commands) {
      ++result.status_counts[out.status];
      ++result.commands;
      result.latencies.push_back(out.latency);
    }
  }
  result.windows = service.windows();
  const double budget = service.admission().options().budget_fraction;
  for (const WindowRecord& window : result.windows) {
    if (window.priced_after > budget + 1e-9 && !window.at_floor) {
      result.budget_ok = false;
      ++result.budget_violations;
    }
  }
  for (image::FunctionId fn = 0; fn < launch.options().app->symbols->size(); ++fn) {
    if (launch.vt(0).filter().deactivated(fn)) result.rank0_deactivated.push_back(fn);
  }
  if (tool.application() != nullptr) result.lost_ranks = tool.application()->lost_pids();
  result.sim_seconds = launch.collect_result().total_seconds;
  result.stats_digest = vt::stats_digest(launch.vt(0).statistics());

  std::uint64_t h = kFnvOffset;
  for (const ScenarioResult::SessionOutcome& session : result.sessions) {
    h = mix(h, session.id);
    h = mix(h, static_cast<std::uint64_t>(session.node));
    for (const ScenarioResult::CommandOutcome& out : session.commands) {
      h = mix(h, static_cast<std::uint64_t>(out.kind));
      h = mix(h, static_cast<std::uint64_t>(out.status));
      h = mix(h, static_cast<std::uint64_t>(out.latency));
    }
    h = mix(h, session.deltas);
    h = mix(h, session.delta_pairs);
  }
  for (const WindowRecord& window : result.windows) {
    h = mix(h, window.sync);
    h = mix(h, static_cast<std::uint64_t>(window.time));
    h = mix(h, static_cast<std::uint64_t>(window.window));
    h = mix(h, quantize(window.measured_fraction));
    h = mix(h, quantize(window.priced_before));
    h = mix(h, quantize(window.priced_after));
    h = mix(h, window.flips);
    h = mix(h, window.at_floor ? 1 : 0);
  }
  for (const image::FunctionId fn : result.rank0_deactivated) h = mix(h, fn);
  for (const int pid : result.lost_ranks) h = mix(h, static_cast<std::uint64_t>(pid));
  h = mix(h, service.responses_sent());
  h = mix(h, result.stats_digest);
  result.digest = h;

  result.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host_start).count();
  return result;
}

}  // namespace dyntrace::service
