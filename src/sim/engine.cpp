#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "sim/parallel_engine.hpp"
#include "support/log.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::sim {

namespace {

/// Scoped thread-local "which engine is executing" marker.
struct CurrentGuard {
  Engine* saved;
  explicit CurrentGuard(Engine** slot, Engine* engine) : saved(*slot), slot_(slot) {
    *slot_ = engine;
  }
  ~CurrentGuard() { *slot_ = saved; }
  Engine** slot_;
};

}  // namespace

// Detached driver: owns nothing after completion (final_suspend never), but
// registers its handle with the engine so that frames still suspended when
// the engine dies are destroyed (which recursively destroys the whole chain
// of child Coro frames).
struct Engine::RootDriver {
  struct promise_type {
    RootDriver get_return_object() {
      return RootDriver{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      // The driver body catches everything; reaching here is a bug.
      DT_PANIC("exception escaped RootDriver");
    }
  };
  std::coroutine_handle<promise_type> handle;
};

Engine::~Engine() {
  // Destroy any still-suspended root frames (daemons, or teardown after a
  // failed run).  Destroying the root frame unwinds its child coroutines.
  for (auto& [id, info] : roots_) {
    if (info.handle) info.handle.destroy();
  }
}

EventId Engine::schedule_at(TimeNs at, EventQueue::Callback cb) {
  assert_local_context();
  DT_ASSERT(at >= now_, "cannot schedule into the past (at=", at, " now=", now_, ")");
  return queue_.schedule(at, std::move(cb));
}

EventId Engine::schedule_after(TimeNs delay, EventQueue::Callback cb) {
  assert_local_context();
  DT_ASSERT(delay >= 0, "negative delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

void Engine::deliver_at(TimeNs at, EventQueue::Callback cb) {
  Engine* cur = tls_current_;
  if (cur == this || group_ == nullptr || !group_->in_parallel_phase()) {
    // Local delivery, or no concurrent windows in flight (setup code,
    // sequential runs): a plain schedule keeps single-shard behaviour
    // identical to the classic engine.
    DT_ASSERT(at >= now_, "cannot deliver into the past (at=", at, " now=", now_, ")");
    queue_.schedule(at, std::move(cb));
    return;
  }
  DT_ASSERT(cur != nullptr,
            "cross-shard deliver_at from outside any engine during a parallel run");
  // Send-side conservative check: the delivery must clear the sender's
  // channel lookahead to this shard, or a concurrent window here may have
  // already executed past it.  (Faults only stretch delays, never shrink
  // them, so this holds under injection too.)
  DT_ASSERT(at >= cur->now_ + group_->channel_lookahead(cur->shard_, shard_),
            "conservative channel bound violated: shard ", cur->shard_, " at t=",
            cur->now_, " delivering to shard ", shard_, " at t=", at,
            " under channel lookahead ",
            group_->channel_lookahead(cur->shard_, shard_));
  std::lock_guard<std::mutex> lock(inbox_mutex_);
  // cross_seq_ belongs to the *sender*: exactly one thread executes a
  // shard's window, so the increment is single-writer.
  inbox_.push_back(ForeignEvent{at, cur->shard_, cur->cross_seq_++, std::move(cb)});
}

void Engine::drain_inbox() {
  std::vector<ForeignEvent> batch;
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    batch.swap(inbox_);
  }
  // Deterministic merge of same-timestamp deliveries: the (time, shard,
  // seq) key is independent of thread scheduling.
  std::sort(batch.begin(), batch.end(), [](const ForeignEvent& a, const ForeignEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.src_shard != b.src_shard) return a.src_shard < b.src_shard;
    return a.src_seq < b.src_seq;
  });
  for (ForeignEvent& e : batch) {
    DT_ASSERT(e.at >= now_, "conservative bound violated: shard ", shard_, " at t=", now_,
              " received a delivery for t=", e.at, " from shard ", e.src_shard);
    queue_.schedule(e.at, std::move(e.cb));
  }
  if (!batch.empty()) {
    if (group_ != nullptr &&
        channel_from_.size() < static_cast<std::size_t>(group_->shard_count())) {
      channel_from_.resize(static_cast<std::size_t>(group_->shard_count()), 0);
    }
    for (const ForeignEvent& e : batch) {
      if (static_cast<std::size_t>(e.src_shard) < channel_from_.size()) {
        ++channel_from_[static_cast<std::size_t>(e.src_shard)];
      }
    }
    telemetry::Registry& reg = telemetry::current();
    if (reg.counting()) reg.add(reg.metrics().sim_cross_deliveries, batch.size());
  }
}

void Engine::post(std::coroutine_handle<> h) {
  assert_local_context();
  DT_ASSERT(h && !h.done(), "posting an invalid coroutine handle");
  queue_.schedule(now_, [h] { h.resume(); });
}

// The driver coroutine owns the process body for its whole lifetime.  It is
// a member coroutine: `this` (the Engine) is guaranteed to outlive every
// frame because ~Engine destroys surviving frames.
Engine::RootDriver Engine::drive_root(Coro<void> body, std::uint64_t root_id, bool daemon) {
  try {
    co_await std::move(body);
  } catch (...) {
    record_failure(roots_.at(root_id).name, std::current_exception());
  }
  finish_root(root_id, daemon);
}

void Engine::spawn(Coro<void> body, std::string name, SpawnOptions options) {
  assert_local_context();
  DT_ASSERT(body.valid(), "spawning an empty Coro");
  const std::uint64_t id = next_root_id_++;
  ++alive_;
  if (options.daemon) ++daemons_alive_;

  RootDriver driver = drive_root(std::move(body), id, options.daemon);

  roots_.emplace(id, RootInfo{driver.handle, std::move(name), options.daemon});
  // Start at the current time, after events already queued for `now`.
  queue_.schedule(now_, [h = driver.handle] { h.resume(); });
}

void Engine::record_failure(const std::string& name, std::exception_ptr error) {
  if (!failure_) {
    failure_ = error;
    failure_name_ = name;
    failure_time_ = now_;
  } else {
    log::warn("sim", "additional process failure in '", name, "' (first failure wins)");
  }
}

void Engine::finish_root(std::uint64_t id, bool daemon) {
  auto it = roots_.find(id);
  DT_ASSERT(it != roots_.end());
  // The frame is about to self-destroy (final_suspend never): forget it.
  roots_.erase(it);
  DT_ASSERT(alive_ > 0);
  --alive_;
  if (daemon) {
    DT_ASSERT(daemons_alive_ > 0);
    --daemons_alive_;
  }
}

std::vector<std::string> Engine::blocked_process_names() const {
  std::vector<std::string> names;
  for (const auto& [id, info] : roots_) {
    if (!info.daemon) names.push_back(info.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [time, cb] = queue_.pop();
  DT_ASSERT(time >= now_, "event queue went backwards");
  now_ = time;
  ++events_executed_;
  CurrentGuard guard(&tls_current_, this);
  cb();
  return true;
}

void Engine::run_window(TimeNs bound) {
  const std::uint64_t before = events_executed_;
  while (!failure_) {
    const auto next = queue_.next_time();
    if (!next || *next >= bound) break;
    step();
  }
  // Bulk-count the window's events: one telemetry update per window keeps
  // step() itself untouched (it is the hottest loop in the project).
  if (events_executed_ != before) {
    telemetry::Registry& reg = telemetry::current();
    reg.add(reg.metrics().sim_events, events_executed_ - before);
  }
}

std::size_t Engine::run_until_blocked(TimeNs deadline) {
  const std::uint64_t before = events_executed_;
  while (!queue_.empty() && !failure_) {
    if (deadline >= 0) {
      auto next = queue_.next_time();
      if (next && *next > deadline) {
        now_ = deadline;
        break;
      }
    }
    step();
  }
  if (events_executed_ != before) {
    telemetry::Registry& reg = telemetry::current();
    reg.add(reg.metrics().sim_events, events_executed_ - before);
  }
  if (failure_) {
    auto error = failure_;
    failure_ = nullptr;
    std::rethrow_exception(error);
  }
  return alive_ - daemons_alive_;
}

void Engine::run(TimeNs deadline) {
  const std::size_t blocked = run_until_blocked(deadline);
  if (deadline >= 0 && !queue_.empty()) return;  // stopped at deadline, fine
  if (blocked > 0) {
    std::ostringstream os;
    os << "simulation deadlock: " << blocked << " process(es) blocked with no pending events:";
    for (const auto& name : blocked_process_names()) os << " '" << name << "'";
    throw DeadlockError(os.str());
  }
}

}  // namespace dyntrace::sim
