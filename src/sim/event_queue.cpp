#include "sim/event_queue.hpp"

#include <algorithm>

#include "support/common.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::sim {

namespace {

/// Below this heap size compaction is never worth the rebuild.
constexpr std::size_t kCompactMinEntries = 64;

/// 4-ary heap indexing.
constexpr std::size_t kArity = 4;

}  // namespace

void EventQueue::sift_up(std::size_t index) const {
  HeapEntry entry = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / kArity;
    if (!earlier(entry, heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = entry;
}

void EventQueue::sift_down(std::size_t index) const {
  const std::size_t size = heap_.size();
  HeapEntry entry = heap_[index];
  while (true) {
    const std::size_t first_child = index * kArity + 1;
    if (first_child >= size) break;
    const std::size_t last_child = std::min(first_child + kArity, size);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], entry)) break;
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = entry;
}

void EventQueue::pop_root() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

EventId EventQueue::schedule(TimeNs at, Callback cb) {
  DT_ASSERT(cb != nullptr, "cannot schedule a null callback");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    DT_ASSERT(slot != EventId::kNoSlot, "event slot table overflow");
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  heap_.push_back(HeapEntry{at, next_seq_++, slot, s.gen});
  sift_up(heap_.size() - 1);
  ++live_;
  return EventId{slot, s.gen};
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;
  ++s.gen;  // invalidates the heap entry and any outstanding EventId
  free_slots_.push_back(slot);
}

bool EventQueue::cancel(EventId id) {
  if (id.slot >= slots_.size() || slots_[id.slot].gen != id.gen) return false;
  release_slot(id.slot);
  DT_ASSERT(live_ > 0);
  --live_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  // Dead heap entries are the price of O(1) cancel; rebuild once they
  // outnumber the live ones so the heap stays within 2x of live events.
  if (heap_.size() < kCompactMinEntries || heap_.size() - live_ <= live_) return;
  const std::size_t before = heap_.size();
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) { return !entry_live(e); }),
              heap_.end());
  telemetry::Registry& reg = telemetry::current();
  reg.add(reg.metrics().sim_queue_compactions);
  reg.add(reg.metrics().sim_queue_compacted_entries, before - heap_.size());
  if (heap_.size() < 2) return;
  for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) sift_down(i);
}

void EventQueue::drop_dead_top() const {
  while (!heap_.empty() && slots_[heap_.front().slot].gen != heap_.front().gen) {
    pop_root();
  }
}

std::optional<TimeNs> EventQueue::next_time() const {
  drop_dead_top();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().time;
}

std::pair<TimeNs, EventQueue::Callback> EventQueue::pop() {
  drop_dead_top();
  DT_ASSERT(!heap_.empty(), "pop on empty event queue");
  const HeapEntry top = heap_.front();
  pop_root();
  Callback cb = std::move(slots_[top.slot].cb);
  release_slot(top.slot);
  DT_ASSERT(live_ > 0);
  --live_;
  return {top.time, std::move(cb)};
}

}  // namespace dyntrace::sim
