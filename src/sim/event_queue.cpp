#include "sim/event_queue.hpp"

#include "support/common.hpp"

namespace dyntrace::sim {

EventId EventQueue::schedule(TimeNs at, Callback cb) {
  DT_ASSERT(cb != nullptr, "cannot schedule a null callback");
  const std::uint64_t seq = next_seq_++;
  heap_.push(HeapEntry{at, seq});
  live_.emplace(seq, std::move(cb));
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) { return live_.erase(id.seq) > 0; }

void EventQueue::drop_dead_top() const {
  while (!heap_.empty() && live_.find(heap_.top().seq) == live_.end()) {
    heap_.pop();
  }
}

std::optional<TimeNs> EventQueue::next_time() const {
  drop_dead_top();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time;
}

std::pair<TimeNs, EventQueue::Callback> EventQueue::pop() {
  drop_dead_top();
  DT_ASSERT(!heap_.empty(), "pop on empty event queue");
  const HeapEntry top = heap_.top();
  heap_.pop();
  auto it = live_.find(top.seq);
  DT_ASSERT(it != live_.end());
  Callback cb = std::move(it->second);
  live_.erase(it);
  return {top.time, std::move(cb)};
}

}  // namespace dyntrace::sim
