#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dyntrace::sim {

void Accumulator::add(double x) {
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Series::at(double xi) const {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] == xi) return y[i];
  }
  return std::nan("");
}

double Series::max_y() const {
  double m = -std::numeric_limits<double>::infinity();
  for (double v : y) m = std::max(m, v);
  return y.empty() ? 0.0 : m;
}

}  // namespace dyntrace::sim
