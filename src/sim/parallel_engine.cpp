#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <string>

#include "support/log.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::sim {

namespace {

constexpr TimeNs kNoEvent = std::numeric_limits<TimeNs>::max();

/// a + b for event times, saturating at kNoEvent ("never").
constexpr TimeNs sat_add(TimeNs a, TimeNs b) {
  return a >= kNoEvent - b ? kNoEvent : a + b;
}

// Bounded busy-wait before parking on a condition variable: roughly the
// cost of one futex round-trip, so a short window never pays for a full
// sleep/wake cycle.
constexpr int kSpinIters = 4096;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

std::uint64_t wall_ns_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

}  // namespace

ParallelEngine::ParallelEngine(Options options) : lookahead_(options.lookahead) {
  DT_EXPECT(options.shards >= 1, "ParallelEngine needs at least one shard, got ",
            options.shards);
  DT_EXPECT(options.lookahead >= 0, "negative lookahead");
  shards_.reserve(static_cast<std::size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    auto engine = std::make_unique<Engine>();
    engine->group_ = this;
    engine->shard_ = i;
    shards_.push_back(std::move(engine));
  }
  const auto n = static_cast<std::size_t>(options.shards);
  channels_.assign(n * n, options.lookahead);
  spin_ = std::thread::hardware_concurrency() > 1;
}

ParallelEngine::~ParallelEngine() { stop_workers(); }

Engine& ParallelEngine::shard(int index) {
  DT_ASSERT(index >= 0 && index < shard_count(), "shard ", index, " out of range (",
            shard_count(), " shards)");
  return *shards_[static_cast<std::size_t>(index)];
}

const Engine& ParallelEngine::shard(int index) const {
  DT_ASSERT(index >= 0 && index < shard_count(), "shard ", index, " out of range (",
            shard_count(), " shards)");
  return *shards_[static_cast<std::size_t>(index)];
}

void ParallelEngine::set_lookahead(TimeNs lookahead) {
  DT_EXPECT(lookahead >= 0, "negative lookahead");
  std::fill(channels_.begin(), channels_.end(), lookahead);
  lookahead_ = lookahead;
  closure_dirty_ = true;
}

void ParallelEngine::set_channel_lookahead(int src, int dst, TimeNs lookahead) {
  DT_EXPECT(lookahead >= 0, "negative channel lookahead");
  DT_EXPECT(src >= 0 && src < shard_count() && dst >= 0 && dst < shard_count(),
            "channel (", src, " -> ", dst, ") out of range (", shard_count(), " shards)");
  DT_EXPECT(src != dst, "channel ", src, " -> ", dst,
            " is same-shard delivery, not a channel");
  const std::size_t n = shards_.size();
  channels_[static_cast<std::size_t>(src) * n + static_cast<std::size_t>(dst)] = lookahead;
  // Keep the scalar minimum coherent eagerly: callers read lookahead()
  // before run() ever rebuilds the closure.
  lookahead_ = kNoEvent;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) lookahead_ = std::min(lookahead_, channels_[i * n + j]);
    }
  }
  closure_dirty_ = true;
}

TimeNs ParallelEngine::channel_lookahead(int src, int dst) const {
  DT_ASSERT(src >= 0 && src < shard_count() && dst >= 0 && dst < shard_count(),
            "channel (", src, " -> ", dst, ") out of range (", shard_count(), " shards)");
  if (src == dst) return 0;
  const std::size_t n = shards_.size();
  return channels_[static_cast<std::size_t>(src) * n + static_cast<std::size_t>(dst)];
}

void ParallelEngine::ensure_closure() {
  if (!closure_dirty_) return;
  const std::size_t n = shards_.size();
  lookahead_ = kNoEvent;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      DT_EXPECT(channels_[i * n + j] > 0, "ParallelEngine::run with ", n,
                " shards requires a positive lookahead on every channel; channel ", i,
                " -> ", j, " is ", channels_[i * n + j],
                " (machine::Cluster installs the machine-derived values)");
      lookahead_ = std::min(lookahead_, channels_[i * n + j]);
    }
  }
  closure_ = channels_;
  // Min-plus Floyd-Warshall over walks of >= 1 hop: seeding the diagonal
  // with "never" (rather than the trivial empty path) makes closure_[i][i]
  // the cheapest round-trip through a sibling -- the earliest one of shard
  // i's own sends can be reflected back at it.  The off-diagonal entries
  // matter too: an installed channel need not obey the triangle inequality,
  // and a two-hop relay that undercuts the direct channel would otherwise
  // break the conservative bound.
  for (std::size_t i = 0; i < n; ++i) closure_[i * n + i] = kNoEvent;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        closure_[i * n + j] = std::min(
            closure_[i * n + j], sat_add(closure_[i * n + k], closure_[k * n + j]));
      }
    }
  }
  closure_dirty_ = false;
}

std::uint64_t ParallelEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& engine : shards_) total += engine->events_executed();
  return total;
}

std::size_t ParallelEngine::processes_alive() const {
  std::size_t total = 0;
  for (const auto& engine : shards_) total += engine->processes_alive();
  return total;
}

std::uint64_t ParallelEngine::channel_deliveries(int src, int dst) const {
  DT_ASSERT(src >= 0 && src < shard_count() && dst >= 0 && dst < shard_count(),
            "channel (", src, " -> ", dst, ") out of range (", shard_count(), " shards)");
  const auto& counts = shards_[static_cast<std::size_t>(dst)]->channel_from_;
  const auto s = static_cast<std::size_t>(src);
  return s < counts.size() ? counts[s] : 0;
}

void ParallelEngine::start_workers() {
  if (!workers_.empty()) return;
  slots_.clear();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  workers_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ParallelEngine::stop_workers() {
  if (workers_.empty()) return;
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->stop.store(true, std::memory_order_release);
  }
  for (auto& slot : slots_) slot->cv.notify_one();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  slots_.clear();
}

void ParallelEngine::worker_loop(std::size_t shard_index) {
  WorkerSlot& slot = *slots_[shard_index];
  std::uint64_t seen = 0;
  while (true) {
    if (spin_) {
      for (int i = 0; i < kSpinIters &&
                      slot.round.load(std::memory_order_acquire) == seen &&
                      !slot.stop.load(std::memory_order_acquire);
           ++i) {
        cpu_pause();
      }
    }
    if (slot.round.load(std::memory_order_acquire) == seen &&
        !slot.stop.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(slot.mutex);
      slot.cv.wait(lock, [&] {
        return slot.stop.load(std::memory_order_acquire) ||
               slot.round.load(std::memory_order_acquire) != seen;
      });
    }
    if (slot.stop.load(std::memory_order_acquire)) return;
    seen = slot.round.load(std::memory_order_acquire);
    const auto start = std::chrono::steady_clock::now();
    shards_[shard_index]->run_window(slot.bound);
    // wall_ns is published by the release fetch_sub below and read by the
    // coordinator only after it observes the countdown reach zero.
    slot.wall_ns = wall_ns_since(start);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last shard of the window: wake the coordinator if it parked.
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_cv_.notify_one();
    }
  }
}

bool ParallelEngine::dispatch_window(const std::vector<std::size_t>& active,
                                     const std::vector<TimeNs>& bounds) {
  start_workers();
  pending_.store(static_cast<int>(active.size()) - 1, std::memory_order_release);
  for (std::size_t i = 1; i < active.size(); ++i) {
    WorkerSlot& slot = *slots_[active[i]];
    {
      // The mutex pairs with the worker's predicate check so the round bump
      // cannot slip between its check and its wait (lost wakeup).
      std::lock_guard<std::mutex> lock(slot.mutex);
      slot.bound = bounds[active[i]];
      slot.round.fetch_add(1, std::memory_order_release);
    }
    slot.cv.notify_one();
  }
  // The coordinator is a worker too: run the first active shard here
  // instead of idling at the barrier.
  const auto start = std::chrono::steady_clock::now();
  shards_[active[0]]->run_window(bounds[active[0]]);
  const std::uint64_t own_wall = wall_ns_since(start);
  // If workers are still running once the coordinator's own shard is done,
  // the barrier genuinely waits on the window's slowest shard; otherwise it
  // falls straight through.
  const bool stalled = pending_.load(std::memory_order_acquire) != 0;
  if (spin_) {
    for (int i = 0;
         i < kSpinIters && pending_.load(std::memory_order_acquire) != 0; ++i) {
      cpu_pause();
    }
  }
  if (pending_.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock,
                  [&] { return pending_.load(std::memory_order_acquire) == 0; });
  }
  telemetry::Registry& reg = telemetry::current();
  if (reg.counting()) {
    const telemetry::Metrics& tm = reg.metrics();
    if (stalled) reg.add(tm.sim_window_stalls);
    std::uint64_t fastest = own_wall;
    std::uint64_t slowest = own_wall;
    for (std::size_t i = 1; i < active.size(); ++i) {
      const std::uint64_t wall = slots_[active[i]]->wall_ns;
      fastest = std::min(fastest, wall);
      slowest = std::max(slowest, wall);
    }
    reg.observe(tm.sim_window_stall_ns, slowest - fastest);
  }
  return stalled;
}

void ParallelEngine::rethrow_earliest_failure() {
  // Deterministic pick: the failure earliest in virtual time, shard index
  // breaking ties -- the one a sequential run would have hit first.
  Engine* first = nullptr;
  for (const auto& engine : shards_) {
    if (!engine->failure_) continue;
    if (first == nullptr || engine->failure_time_ < first->failure_time_) {
      first = engine.get();
    }
  }
  DT_ASSERT(first != nullptr);
  for (const auto& engine : shards_) {
    if (engine->failure_ && engine.get() != first) {
      log::warn("sim", "additional process failure in '", engine->failure_name_,
                "' on shard ", engine->shard_, " (earliest failure wins)");
      engine->failure_ = nullptr;
    }
  }
  auto error = first->failure_;
  first->failure_ = nullptr;
  std::rethrow_exception(error);
}

void ParallelEngine::checkpoint_at_deadline(TimeNs deadline) {
  // The conservative bound guarantees every in-flight delivery lands past
  // the deadline (the last window was capped at deadline + 1), but sibling
  // inboxes may still hold those future deliveries: move them into their
  // home queues now so the stopped state is a complete checkpoint that a
  // later run() -- or a caller inspecting the shards -- resumes from
  // exactly as a sequential run would.
  for (auto& engine : shards_) engine->drain_inbox();
  for (auto& engine : shards_) {
    const auto next = engine->queue_.next_time();
    DT_ASSERT(!next || *next > deadline, "deadline checkpoint left shard ",
              engine->shard_, " a pending event at or before t=", deadline);
    engine->now_ = std::max(engine->now_, deadline);
  }
}

void ParallelEngine::run(TimeNs deadline) {
  if (shard_count() == 1) {
    shards_[0]->run(deadline);
    return;
  }
  DT_EXPECT(lookahead_ > 0,
            "ParallelEngine::run with ", shard_count(),
            " shards requires a positive lookahead (set by machine::Cluster)");
  ensure_closure();

  parallel_phase_.store(true, std::memory_order_release);
  struct PhaseReset {
    std::atomic<bool>& flag;
    ~PhaseReset() { flag.store(false, std::memory_order_release); }
  } reset{parallel_phase_};

  telemetry::Registry& reg = telemetry::current();
  const telemetry::Metrics& tm = reg.metrics();
  if (reg.spans_enabled()) {
    for (int i = 0; i < shard_count(); ++i) {
      reg.name_track(telemetry::Metrics::kShardTrackBase + static_cast<std::uint32_t>(i),
                     "sim.shard" + std::to_string(i));
    }
  }

  const std::size_t n = shards_.size();
  std::vector<TimeNs> next(n);
  std::vector<TimeNs> bounds(n);
  std::vector<std::size_t> active;
  while (true) {
    // Coordinator section: workers are quiescent, so single-threaded access
    // to every shard is safe.
    for (auto& engine : shards_) engine->drain_inbox();

    bool failed = false;
    TimeNs min_next = kNoEvent;
    for (std::size_t i = 0; i < n; ++i) {
      if (shards_[i]->failure_) failed = true;
      const auto at = shards_[i]->queue_.next_time();
      next[i] = at ? *at : kNoEvent;
      min_next = std::min(min_next, next[i]);
    }
    if (failed) rethrow_earliest_failure();
    if (min_next == kNoEvent) break;  // every queue drained
    if (deadline >= 0 && min_next > deadline) {
      checkpoint_at_deadline(deadline);
      return;  // stopped at deadline, fine
    }

    // Per-shard channel-clock bounds (see the header): B(i) = min over
    // shards k of next(k) + D+(k, i).  A deadline caps every bound so no
    // event past it executes.  A bound beyond the classic global window
    // (min_next + min lookahead) is a fused window: the shard runs what
    // would have been several global rounds without re-synchronising.
    const TimeNs classic = sat_add(min_next, lookahead_);
    active.clear();
    std::uint64_t fused = 0;
    for (std::size_t i = 0; i < n; ++i) {
      TimeNs bound = kNoEvent;
      for (std::size_t k = 0; k < n; ++k) {
        bound = std::min(bound, sat_add(next[k], closure_[k * n + i]));
      }
      if (deadline >= 0 && bound > deadline + 1) bound = deadline + 1;
      bounds[i] = bound;
      if (next[i] < bound) {
        active.push_back(i);
        if (bound > classic) ++fused;
      }
    }
    // The shard holding min_next always clears its own bound (every closure
    // entry is positive), so each round executes at least one event.
    DT_ASSERT(!active.empty(), "channel-clock round made no progress");
    ++windows_;
    if (fused > 0) ++fused_windows_;
    if (reg.counting()) {
      reg.add(tm.sim_windows);
      reg.observe(tm.sim_window_shards, active.size());
      if (fused > 0) reg.add(tm.sim_window_fusions, fused);
      std::size_t depth = 0;
      for (const auto& engine : shards_) depth += engine->queue_.size();
      reg.observe(tm.sim_queue_depth, depth);
    }
    // One span per active shard on that shard's own track, emitted the same
    // way for the inline and pooled paths.  Spans on one track are disjoint
    // in virtual time: a window's span closes at the shard clock (< B(i)),
    // and both the next local event and any cross-shard arrival are >= B(i).
    const bool spans = reg.spans_enabled();
    if (spans) {
      for (const std::size_t i : active) {
        reg.span_begin(tm.span_window,
                       telemetry::Metrics::kShardTrackBase + static_cast<std::uint32_t>(i),
                       next[i]);
      }
    }
    if (active.size() == 1) {
      // One busy shard (sequential stretches, e.g. the tool connecting
      // while the application waits): run it inline, skip the pool barrier.
      shards_[active[0]]->run_window(bounds[active[0]]);
    } else {
      dispatch_window(active, bounds);
    }
    if (spans) {
      for (const std::size_t i : active) {
        reg.span_end(tm.span_window,
                     telemetry::Metrics::kShardTrackBase + static_cast<std::uint32_t>(i),
                     shards_[i]->now_);
      }
    }
  }

  // All queues drained: deadlock if any non-daemon process is still blocked.
  std::size_t blocked = 0;
  std::vector<std::string> names;
  for (const auto& engine : shards_) {
    blocked += engine->alive_ - engine->daemons_alive_;
    auto shard_names = engine->blocked_process_names();
    names.insert(names.end(), shard_names.begin(), shard_names.end());
  }
  if (blocked > 0) {
    std::sort(names.begin(), names.end());
    std::ostringstream os;
    os << "simulation deadlock: " << blocked
       << " process(es) blocked with no pending events:";
    for (const auto& name : names) os << " '" << name << "'";
    throw DeadlockError(os.str());
  }
}

}  // namespace dyntrace::sim
