#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/log.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::sim {

namespace {

constexpr TimeNs kNoEvent = std::numeric_limits<TimeNs>::max();

// Bounded busy-wait before parking on a condition variable: roughly the
// cost of one futex round-trip, so a short window never pays for a full
// sleep/wake cycle.
constexpr int kSpinIters = 4096;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

ParallelEngine::ParallelEngine(Options options) : lookahead_(options.lookahead) {
  DT_EXPECT(options.shards >= 1, "ParallelEngine needs at least one shard, got ",
            options.shards);
  shards_.reserve(static_cast<std::size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    auto engine = std::make_unique<Engine>();
    engine->group_ = this;
    engine->shard_ = i;
    shards_.push_back(std::move(engine));
  }
  spin_ = std::thread::hardware_concurrency() > 1;
}

ParallelEngine::~ParallelEngine() { stop_workers(); }

Engine& ParallelEngine::shard(int index) {
  DT_ASSERT(index >= 0 && index < shard_count(), "shard ", index, " out of range (",
            shard_count(), " shards)");
  return *shards_[static_cast<std::size_t>(index)];
}

const Engine& ParallelEngine::shard(int index) const {
  DT_ASSERT(index >= 0 && index < shard_count(), "shard ", index, " out of range (",
            shard_count(), " shards)");
  return *shards_[static_cast<std::size_t>(index)];
}

void ParallelEngine::set_lookahead(TimeNs lookahead) {
  DT_EXPECT(lookahead >= 0, "negative lookahead");
  lookahead_ = lookahead;
}

std::uint64_t ParallelEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& engine : shards_) total += engine->events_executed();
  return total;
}

std::size_t ParallelEngine::processes_alive() const {
  std::size_t total = 0;
  for (const auto& engine : shards_) total += engine->processes_alive();
  return total;
}

void ParallelEngine::start_workers() {
  if (!workers_.empty()) return;
  slots_.clear();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  workers_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ParallelEngine::stop_workers() {
  if (workers_.empty()) return;
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    slot->stop.store(true, std::memory_order_release);
  }
  for (auto& slot : slots_) slot->cv.notify_one();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  slots_.clear();
}

void ParallelEngine::worker_loop(std::size_t shard_index) {
  WorkerSlot& slot = *slots_[shard_index];
  std::uint64_t seen = 0;
  while (true) {
    if (spin_) {
      for (int i = 0; i < kSpinIters &&
                      slot.round.load(std::memory_order_acquire) == seen &&
                      !slot.stop.load(std::memory_order_acquire);
           ++i) {
        cpu_pause();
      }
    }
    if (slot.round.load(std::memory_order_acquire) == seen &&
        !slot.stop.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(slot.mutex);
      slot.cv.wait(lock, [&] {
        return slot.stop.load(std::memory_order_acquire) ||
               slot.round.load(std::memory_order_acquire) != seen;
      });
    }
    if (slot.stop.load(std::memory_order_acquire)) return;
    seen = slot.round.load(std::memory_order_acquire);
    shards_[shard_index]->run_window(slot.bound);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last shard of the window: wake the coordinator if it parked.
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_cv_.notify_one();
    }
  }
}

void ParallelEngine::dispatch_window(TimeNs bound, const std::vector<std::size_t>& active) {
  start_workers();
  pending_.store(static_cast<int>(active.size()) - 1, std::memory_order_release);
  for (std::size_t i = 1; i < active.size(); ++i) {
    WorkerSlot& slot = *slots_[active[i]];
    {
      // The mutex pairs with the worker's predicate check so the round bump
      // cannot slip between its check and its wait (lost wakeup).
      std::lock_guard<std::mutex> lock(slot.mutex);
      slot.bound = bound;
      slot.round.fetch_add(1, std::memory_order_release);
    }
    slot.cv.notify_one();
  }
  // The coordinator is a worker too: run the first active shard here
  // instead of idling at the barrier.
  shards_[active[0]]->run_window(bound);
  if (spin_) {
    for (int i = 0;
         i < kSpinIters && pending_.load(std::memory_order_acquire) != 0; ++i) {
      cpu_pause();
    }
  }
  if (pending_.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock,
                  [&] { return pending_.load(std::memory_order_acquire) == 0; });
  }
}

void ParallelEngine::rethrow_earliest_failure() {
  // Deterministic pick: the failure earliest in virtual time, shard index
  // breaking ties -- the one a sequential run would have hit first.
  Engine* first = nullptr;
  for (const auto& engine : shards_) {
    if (!engine->failure_) continue;
    if (first == nullptr || engine->failure_time_ < first->failure_time_) {
      first = engine.get();
    }
  }
  DT_ASSERT(first != nullptr);
  for (const auto& engine : shards_) {
    if (engine->failure_ && engine.get() != first) {
      log::warn("sim", "additional process failure in '", engine->failure_name_,
                "' on shard ", engine->shard_, " (earliest failure wins)");
      engine->failure_ = nullptr;
    }
  }
  auto error = first->failure_;
  first->failure_ = nullptr;
  std::rethrow_exception(error);
}

void ParallelEngine::run(TimeNs deadline) {
  if (shard_count() == 1) {
    shards_[0]->run(deadline);
    return;
  }
  DT_EXPECT(lookahead_ > 0,
            "ParallelEngine::run with ", shard_count(),
            " shards requires a positive lookahead (set by machine::Cluster)");

  parallel_phase_.store(true, std::memory_order_release);
  struct PhaseReset {
    std::atomic<bool>& flag;
    ~PhaseReset() { flag.store(false, std::memory_order_release); }
  } reset{parallel_phase_};

  telemetry::Registry& reg = telemetry::current();
  const telemetry::Metrics& tm = reg.metrics();
  if (reg.spans_enabled()) {
    reg.name_track(telemetry::Metrics::kShardTrackBase, "sim.windows");
  }

  std::vector<std::size_t> active;
  while (true) {
    // Coordinator section: workers are quiescent, so single-threaded access
    // to every shard is safe.
    for (auto& engine : shards_) engine->drain_inbox();

    bool failed = false;
    TimeNs min_next = kNoEvent;
    for (auto& engine : shards_) {
      if (engine->failure_) failed = true;
      const auto next = engine->queue_.next_time();
      if (next && *next < min_next) min_next = *next;
    }
    if (failed) rethrow_earliest_failure();
    if (min_next == kNoEvent) break;  // every queue drained
    if (deadline >= 0 && min_next > deadline) {
      for (auto& engine : shards_) engine->now_ = std::max(engine->now_, deadline);
      return;  // stopped at deadline, fine
    }

    TimeNs bound = min_next + lookahead_;
    // A deadline caps the window so no event past it executes.
    if (deadline >= 0 && bound > deadline + 1) bound = deadline + 1;

    active.clear();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const auto next = shards_[i]->queue_.next_time();
      if (next && *next < bound) active.push_back(i);
    }
    ++windows_;
    if (reg.counting()) {
      reg.add(tm.sim_windows);
      reg.observe(tm.sim_window_shards, active.size());
      // A multi-shard window is where the pool barrier can stall: the
      // coordinator waits for the slowest shard.
      if (active.size() > 1) reg.add(tm.sim_window_stalls);
      std::size_t depth = 0;
      for (const auto& engine : shards_) depth += engine->queue_.size();
      reg.observe(tm.sim_queue_depth, depth);
    }
    // YAWNS windows are disjoint in virtual time (every cross-shard delivery
    // lands at or past the sending window's bound), so back-to-back
    // begin/end pairs on one track nest correctly.
    if (reg.spans_enabled()) {
      reg.span_begin(tm.span_window, telemetry::Metrics::kShardTrackBase, min_next);
    }
    if (active.size() == 1) {
      // One busy shard (sequential stretches, e.g. the tool connecting
      // while the application waits): run it inline, skip the pool barrier.
      shards_[active[0]]->run_window(bound);
    } else {
      dispatch_window(bound, active);
    }
    if (reg.spans_enabled()) {
      reg.span_end(tm.span_window, telemetry::Metrics::kShardTrackBase, bound);
    }
  }

  // All queues drained: deadlock if any non-daemon process is still blocked.
  std::size_t blocked = 0;
  std::vector<std::string> names;
  for (const auto& engine : shards_) {
    blocked += engine->alive_ - engine->daemons_alive_;
    auto shard_names = engine->blocked_process_names();
    names.insert(names.end(), shard_names.begin(), shard_names.end());
  }
  if (blocked > 0) {
    std::sort(names.begin(), names.end());
    std::ostringstream os;
    os << "simulation deadlock: " << blocked
       << " process(es) blocked with no pending events:";
    for (const auto& name : names) os << " '" << name << "'";
    throw DeadlockError(os.str());
  }
}

}  // namespace dyntrace::sim
