// Small-buffer-optimised move-only callable for the event hot path.
//
// Every simulated event is a callback; std::function allocates for anything
// larger than two pointers, which made scheduling the dominant allocator in
// the whole system.  InlineCallback stores up to kInlineBytes of capture
// state in place (covering every callback the sim/mpi/dpcl layers create)
// and falls back to the heap only for oversized captures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "support/common.hpp"

namespace dyntrace::sim {

class InlineCallback {
 public:
  /// Capture budget.  An MPI delivery captures an Envelope (40 bytes) plus
  /// a target pointer; 64 leaves headroom for one more word.
  static constexpr std::size_t kInlineBytes = 64;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): like std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else {
      heap_ = new Fn(std::forward<F>(f));
      ops_ = heap_ops<Fn>();
    }
  }

  InlineCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineCallback& cb, std::nullptr_t) { return cb.ops_ == nullptr; }
  friend bool operator!=(const InlineCallback& cb, std::nullptr_t) { return cb.ops_ != nullptr; }

  void operator()() {
    DT_ASSERT(ops_ != nullptr, "invoking an empty InlineCallback");
    ops_->invoke(target());
  }

  /// True when the capture lives in the inline buffer (for tests).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* from, InlineCallback& to) noexcept;  // move + destroy source
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static void invoke_fn(void* p) {
    (*static_cast<Fn*>(p))();
  }

  template <typename Fn>
  static void relocate_inline(void* p, InlineCallback& to) noexcept {
    Fn* from = static_cast<Fn*>(p);
    ::new (static_cast<void*>(to.storage_)) Fn(std::move(*from));
    from->~Fn();
    to.ops_ = inline_ops<Fn>();
  }

  template <typename Fn>
  static void destroy_inline(void* p) noexcept {
    static_cast<Fn*>(p)->~Fn();
  }

  template <typename Fn>
  static void relocate_heap(void* p, InlineCallback& to) noexcept {
    to.heap_ = p;  // steal the allocation
    to.ops_ = heap_ops<Fn>();
  }

  template <typename Fn>
  static void destroy_heap(void* p) noexcept {
    delete static_cast<Fn*>(p);
  }

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {&invoke_fn<Fn>, &relocate_inline<Fn>,
                                &destroy_inline<Fn>, /*inline_storage=*/true};
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {&invoke_fn<Fn>, &relocate_heap<Fn>, &destroy_heap<Fn>,
                                /*inline_storage=*/false};
    return &ops;
  }

  void* target() { return ops_->inline_storage ? static_cast<void*>(storage_) : heap_; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
      heap_ = nullptr;
    }
  }

  void move_from(InlineCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      const Ops* ops = other.ops_;
      ops->relocate(other.target(), *this);
      other.ops_ = nullptr;
      other.heap_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
  void* heap_ = nullptr;
};

}  // namespace dyntrace::sim
