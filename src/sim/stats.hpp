// Statistics accumulators used by the trace library, the workloads, and the
// benchmark harness.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dyntrace::sim {

/// Streaming accumulator: count / sum / min / max / mean / variance
/// (Welford's algorithm, numerically stable).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A named (x, y) series, as plotted in the paper's figures.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xi, double yi) {
    x.push_back(xi);
    y.push_back(yi);
  }
  /// y value at the given x, or NaN if absent.
  double at(double xi) const;
  double max_y() const;
};

}  // namespace dyntrace::sim
