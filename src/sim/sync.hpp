// Synchronisation primitives for simulated processes.
//
// All wake-ups go through Engine::post, i.e. a woken coroutine resumes as a
// fresh event at the current virtual time, never re-entrantly inside the
// waker.  Waiter queues are FIFO, which keeps runs deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/engine.hpp"
#include "support/common.hpp"

namespace dyntrace::sim {

/// One-shot event: wait() suspends until fire(); waits after fire() return
/// immediately.  Mirrors a latch with count 1.
class Trigger {
 public:
  explicit Trigger(Engine& engine) : engine_(engine) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  bool fired() const { return fired_; }
  std::size_t waiter_count() const { return waiters_.size(); }

  /// Safe to call from a sibling shard only when no coroutine is waiting
  /// (Engine::post asserts local context otherwise); see Launch's init
  /// trigger for the pattern.
  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) engine_.post(h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Trigger& trigger;
      bool await_ready() const noexcept { return trigger.fired_; }
      void await_suspend(std::coroutine_handle<> h) { trigger.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Timed wait: co_await trigger.wait_for(t) resumes when the trigger
  /// fires OR after `timeout` virtual nanoseconds, whichever comes first,
  /// and returns whether it fired.  The deadline path removes the waiter,
  /// so an abandoned wait never leaks; fire() and the timer racing at one
  /// timestamp resolve to whoever dequeues the waiter first.
  auto wait_for(TimeNs timeout) {
    struct Awaiter {
      Trigger& trigger;
      TimeNs timeout;
      std::coroutine_handle<> handle{};
      EventId timer{};
      bool timed_out = false;
      bool suspended = false;

      bool await_ready() const noexcept { return trigger.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        handle = h;
        trigger.waiters_.push_back(h);
        timer = trigger.engine_.schedule_after(timeout, [this] {
          // fire() may have already claimed (and posted) this waiter at the
          // same timestamp; only a successful removal may resume it here.
          if (trigger.remove_waiter(handle)) {
            timed_out = true;
            handle.resume();
          }
        });
      }
      bool await_resume() {
        if (suspended && !timed_out) trigger.engine_.cancel(timer);
        return !timed_out;
      }
    };
    return Awaiter{*this, timeout};
  }

 private:
  bool remove_waiter(std::coroutine_handle<> h) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == h) {
        waiters_.erase(it);
        return true;
      }
    }
    return false;
  }

  Engine& engine_;
  bool fired_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Reusable broadcast/unicast notification (no payload, no memory: a wait
/// that starts after a notify misses it).
class Condition {
 public:
  explicit Condition(Engine& engine) : engine_(engine) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  std::size_t waiter_count() const { return waiters_.size(); }

  void notify_one() {
    if (waiters_.empty()) return;
    engine_.post(waiters_.front());
    waiters_.pop_front();
  }

  void notify_all() {
    for (auto h : waiters_) engine_.post(h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Condition& cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { cond.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& engine_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO waiters.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial)
      : engine_(engine), count_(initial) {
    DT_ASSERT(initial >= 0);
  }
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::int64_t available() const { return count_; }

  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const noexcept {
        if (sem.count_ > 0 && sem.waiters_.empty()) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      // Hand the permit directly to the first waiter.
      engine_.post(waiters_.front());
      waiters_.pop_front();
    } else {
      ++count_;
    }
  }

 private:
  Engine& engine_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Cyclic barrier for a fixed number of participants.  The N-th arrival
/// releases everyone and resets the barrier for the next cycle.
class SimBarrier {
 public:
  SimBarrier(Engine& engine, std::size_t participants)
      : engine_(engine), participants_(participants) {
    DT_ASSERT(participants >= 1);
  }
  SimBarrier(const SimBarrier&) = delete;
  SimBarrier& operator=(const SimBarrier&) = delete;

  std::size_t participants() const { return participants_; }
  std::uint64_t generation() const { return generation_; }

  auto arrive_and_wait() {
    struct Awaiter {
      SimBarrier& barrier;
      bool await_ready() const noexcept {
        // The last arrival releases everyone and never suspends.  The
        // release must happen HERE, not in await_resume: a released waiter
        // resumes later (posted), and by then the next cycle's arrivals may
        // be queued -- re-checking the count on resume would release the
        // next generation early.
        if (barrier.waiters_.size() + 1 == barrier.participants_) {
          barrier.release_all();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { barrier.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  void release_all() {
    ++generation_;
    for (auto h : waiters_) engine_.post(h);
    waiters_.clear();
  }

  Engine& engine_;
  std::size_t participants_;
  std::uint64_t generation_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace dyntrace::sim
