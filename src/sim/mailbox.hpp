// Message queues for simulated processes.
//
// Mailbox<T>   — FIFO queue with blocking recv(); the building block for
//                daemon request loops.
// MatchQueue<T> — queue with predicate-matched recv(); models an MPI-style
//                unexpected-message queue plus posted-receive list: a recv
//                takes the first queued item matching its predicate, or
//                blocks until a matching item is put.  Items are handed
//                directly to the matching waiter, so two waiters can never
//                race for the same item.
#pragma once

#include <coroutine>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "support/common.hpp"

namespace dyntrace::sim {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : engine_(engine) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void put(T item) {
    items_.push_back(std::move(item));
    if (!waiters_.empty()) {
      engine_.post(waiters_.front());
      waiters_.pop_front();
    }
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    DT_ASSERT(waiters_.empty(), "try_recv while blocking receivers are waiting");
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocking receive: co_await mailbox.recv().
  auto recv() {
    struct Awaiter {
      Mailbox& box;
      bool await_ready() const noexcept {
        // Only take the fast path when no one is queued ahead of us.
        return !box.items_.empty() && box.waiters_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) { box.waiters_.push_back(h); }
      T await_resume() {
        DT_ASSERT(!box.items_.empty(), "mailbox waiter woke with no item");
        T item = std::move(box.items_.front());
        box.items_.pop_front();
        return item;
      }
    };
    return Awaiter{*this};
  }

  /// Timed receive: like recv(), but gives up after `timeout` virtual
  /// nanoseconds and returns std::nullopt.  put() and the deadline racing
  /// at one timestamp resolve to whoever dequeues the waiter first.
  auto recv_for(TimeNs timeout) {
    struct Awaiter {
      Mailbox& box;
      TimeNs timeout;
      std::coroutine_handle<> handle{};
      EventId timer{};
      bool timed_out = false;
      bool suspended = false;

      bool await_ready() const noexcept {
        return !box.items_.empty() && box.waiters_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        handle = h;
        box.waiters_.push_back(h);
        timer = box.engine_.schedule_after(timeout, [this] {
          if (box.remove_waiter(handle)) {
            timed_out = true;
            handle.resume();
          }
        });
      }
      std::optional<T> await_resume() {
        if (timed_out) return std::nullopt;
        if (suspended) box.engine_.cancel(timer);
        DT_ASSERT(!box.items_.empty(), "mailbox waiter woke with no item");
        T item = std::move(box.items_.front());
        box.items_.pop_front();
        return item;
      }
    };
    return Awaiter{*this, timeout};
  }

 private:
  bool remove_waiter(std::coroutine_handle<> h) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == h) {
        waiters_.erase(it);
        return true;
      }
    }
    return false;
  }

  Engine& engine_;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> waiters_;
};

template <typename T>
class MatchQueue {
 public:
  using Predicate = std::function<bool(const T&)>;

  explicit MatchQueue(Engine& engine) : engine_(engine) {}
  MatchQueue(const MatchQueue&) = delete;
  MatchQueue& operator=(const MatchQueue&) = delete;

  std::size_t queued() const { return items_.size(); }
  std::size_t waiting() const { return waiters_.size(); }

  void put(T item) {
    // Hand to the first waiter whose predicate matches (FIFO priority).
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if ((*it)->predicate(item)) {
        Waiter* waiter = *it;
        waiters_.erase(it);
        waiter->slot.emplace(std::move(item));
        engine_.post(waiter->handle);
        return;
      }
    }
    items_.push_back(std::move(item));
  }

  /// Non-blocking matched receive.
  std::optional<T> try_recv(const Predicate& predicate) {
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (predicate(*it)) {
        T item = std::move(*it);
        items_.erase(it);
        return item;
      }
    }
    return std::nullopt;
  }

  /// True if any queued item matches (MPI_Iprobe analogue).
  bool probe(const Predicate& predicate) const {
    for (const auto& item : items_) {
      if (predicate(item)) return true;
    }
    return false;
  }

  /// Timed matched receive: like recv(pred), but gives up after `timeout`
  /// virtual nanoseconds and returns std::nullopt.  put() and the deadline
  /// racing at one timestamp resolve to whoever dequeues the waiter first.
  auto recv_for(Predicate predicate, TimeNs timeout) {
    struct Awaiter {
      MatchQueue& queue;
      TimeNs timeout;
      Waiter waiter;
      EventId timer{};
      bool timed_out = false;
      bool suspended = false;

      Awaiter(MatchQueue& q, Predicate p, TimeNs t)
          : queue(q), timeout(t), waiter{std::move(p), std::nullopt, {}} {}
      Awaiter(const Awaiter&) = delete;
      Awaiter& operator=(const Awaiter&) = delete;

      bool await_ready() {
        auto item = queue.try_recv(waiter.predicate);
        if (item) {
          waiter.slot = std::move(item);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        suspended = true;
        waiter.handle = h;
        queue.waiters_.push_back(&waiter);
        timer = queue.engine_.schedule_after(timeout, [this] {
          // put() may have already claimed (and posted) this waiter at the
          // same timestamp; only a successful removal may resume it here.
          if (queue.remove_waiter(&waiter)) {
            timed_out = true;
            waiter.handle.resume();
          }
        });
      }
      std::optional<T> await_resume() {
        if (timed_out) return std::nullopt;
        if (suspended) queue.engine_.cancel(timer);
        DT_ASSERT(waiter.slot.has_value(), "match-queue waiter woke without an item");
        return std::move(waiter.slot);
      }
    };
    return Awaiter{*this, std::move(predicate), timeout};
  }

  /// Blocking matched receive: co_await queue.recv(pred).
  auto recv(Predicate predicate) {
    struct Awaiter {
      MatchQueue& queue;
      Waiter waiter;

      Awaiter(MatchQueue& q, Predicate p) : queue(q), waiter{std::move(p), std::nullopt, {}} {}
      Awaiter(const Awaiter&) = delete;
      Awaiter& operator=(const Awaiter&) = delete;

      bool await_ready() {
        auto item = queue.try_recv(waiter.predicate);
        if (item) {
          waiter.slot = std::move(item);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        // `waiter` lives in this Awaiter, which lives in the suspended
        // coroutine frame; the pointer is stable until resumption.
        waiter.handle = h;
        queue.waiters_.push_back(&waiter);
      }
      T await_resume() {
        DT_ASSERT(waiter.slot.has_value(), "match-queue waiter woke without an item");
        return std::move(*waiter.slot);
      }
    };
    return Awaiter{*this, std::move(predicate)};
  }

 private:
  struct Waiter {
    Predicate predicate;
    std::optional<T> slot;
    std::coroutine_handle<> handle;
  };

  bool remove_waiter(Waiter* w) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == w) {
        waiters_.erase(it);
        return true;
      }
    }
    return false;
  }

  Engine& engine_;
  std::deque<T> items_;
  std::deque<Waiter*> waiters_;
};

}  // namespace dyntrace::sim
