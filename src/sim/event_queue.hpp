// The pending-event set of the discrete-event engine.
//
// A binary heap orders events by (time, sequence number); the sequence
// number makes simultaneous events fire in scheduling order, which is what
// makes whole-simulation runs deterministic.  Cancellation is lazy: the
// callback is removed from a side table and the heap entry is skipped when
// popped.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace dyntrace::sim {

/// Opaque handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
  friend bool operator==(EventId a, EventId b) { return a.seq == b.seq; }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at`.
  EventId schedule(TimeNs at, Callback cb);

  /// Cancel a pending event.  Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Time of the earliest live event, if any.
  std::optional<TimeNs> next_time() const;

  /// Pop the earliest live event.  Precondition: !empty().
  std::pair<TimeNs, Callback> pop();

  bool empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }

  /// Total events ever scheduled (monotone; used for determinism checks).
  std::uint64_t scheduled_count() const { return next_seq_; }

 private:
  struct HeapEntry {
    TimeNs time;
    std::uint64_t seq;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead_top() const;

  // `heap_` can contain entries whose seq is no longer in `live_`
  // (cancelled); they are skipped on access.  Mutable so the const
  // accessors can garbage-collect.
  mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> live_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dyntrace::sim
