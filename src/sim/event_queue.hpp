// The pending-event set of the discrete-event engine.
//
// A 4-ary min-heap orders events by (time, sequence number); the sequence
// number makes simultaneous events fire in scheduling order, which is what
// makes whole-simulation runs deterministic.  Four-way branching halves the
// tree depth of a binary heap and keeps sibling comparisons inside two
// cache lines, which is most of the pop cost at simulation-size queues.  Callbacks live in a
// slot table addressed by {slot, generation} handles: scheduling reuses
// freed slots (no allocation in steady state), cancellation is O(1) slot
// invalidation, and stale heap entries are skipped on access.  When dead
// entries outnumber live ones the heap is compacted, so cancel-heavy
// workloads (timeout patterns) stay bounded.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace dyntrace::sim {

/// Handle for cancelling a scheduled event.  The generation detects reuse:
/// a handle kept past its event's execution never cancels a later event
/// that recycled the same slot.
struct EventId {
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  std::uint32_t slot = kNoSlot;
  std::uint32_t gen = 0;
  friend bool operator==(EventId a, EventId b) { return a.slot == b.slot && a.gen == b.gen; }
};

class EventQueue {
 public:
  using Callback = InlineCallback;

  /// Schedule `cb` at absolute time `at`.
  EventId schedule(TimeNs at, Callback cb);

  /// Cancel a pending event.  Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Time of the earliest live event, if any.
  std::optional<TimeNs> next_time() const;

  /// Pop the earliest live event.  Precondition: !empty().
  std::pair<TimeNs, Callback> pop();

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Total events ever scheduled (monotone; used for determinism checks).
  std::uint64_t scheduled_count() const { return next_seq_; }

  /// Heap entries including cancelled ones awaiting compaction (the
  /// quantity the compaction bound caps; see tests).
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct HeapEntry {
    TimeNs time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
  };

  bool entry_live(const HeapEntry& e) const {
    return slots_[e.slot].gen == e.gen;
  }
  void sift_up(std::size_t index) const;
  void sift_down(std::size_t index) const;
  void pop_root() const;
  void drop_dead_top() const;
  void release_slot(std::uint32_t slot);
  void maybe_compact();

  // `heap_` can contain entries whose slot generation moved on (cancelled);
  // they are skipped on access.  Mutable so the const accessors can drop
  // dead roots (slot state itself is untouched by the drop).
  mutable std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dyntrace::sim
