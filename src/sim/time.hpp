// Simulated time.
//
// All simulation timestamps and durations are signed 64-bit nanosecond
// counts.  2^63 ns is ~292 years of virtual time, far beyond any run here.
#pragma once

#include <cstdint>
#include <string>

namespace dyntrace::sim {

using TimeNs = std::int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;

constexpr TimeNs nanoseconds(double n) { return static_cast<TimeNs>(n); }
constexpr TimeNs microseconds(double us) { return static_cast<TimeNs>(us * 1e3); }
constexpr TimeNs milliseconds(double ms) { return static_cast<TimeNs>(ms * 1e6); }
constexpr TimeNs seconds(double s) { return static_cast<TimeNs>(s * 1e9); }

constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_milliseconds(TimeNs t) { return static_cast<double>(t) * 1e-6; }
constexpr double to_microseconds(TimeNs t) { return static_cast<double>(t) * 1e-3; }

/// Human-readable rendering with an adaptive unit ("1.250 ms", "3.2 s").
std::string format_duration(TimeNs t);

}  // namespace dyntrace::sim
