// The discrete-event simulation engine.
//
// The engine owns virtual time and the pending-event set, and drives root
// coroutine processes spawned with spawn().  Determinism: events at equal
// timestamps fire in scheduling order, and nothing in the engine consults
// wall-clock time or unordered iteration.
//
// Error model: an exception escaping a root process stops the run and is
// rethrown from run().  If all events drain while non-daemon processes are
// still blocked, run() throws DeadlockError naming the stuck processes.
//
// Sharding: an Engine can be one shard of a ParallelEngine.  Every
// simulated process has a home engine and all of its events execute there;
// communication *between* engines goes through deliver_at(), which routes
// to a mutex-protected foreign inbox while a parallel run is in progress
// and is merged deterministically at window boundaries (see
// sim/parallel_engine.hpp).  A standalone Engine is the single-shard
// degenerate case and pays none of the synchronisation.
#pragma once

#include <coroutine>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "support/common.hpp"

namespace dyntrace::sim {

class ParallelEngine;

/// Thrown by Engine::run() when non-daemon processes remain blocked with no
/// pending events.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(std::string msg) : Error(std::move(msg)) {}
};

class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- time and events -----------------------------------------------------

  TimeNs now() const { return now_; }

  EventId schedule_at(TimeNs at, EventQueue::Callback cb);
  EventId schedule_after(TimeNs delay, EventQueue::Callback cb);
  bool cancel(EventId id) {
    assert_local_context();
    return queue_.cancel(id);
  }

  /// Schedule `cb` on *this* engine at absolute time `at`, callable from any
  /// engine.  On the owning engine (or outside a parallel run) this is a
  /// plain schedule; from a sibling shard mid-run the event is queued in a
  /// thread-safe inbox and merged at the next window boundary, ordered by
  /// (at, sender shard, sender sequence).  Cross-shard deliveries must obey
  /// the conservative bound: `at` must be >= sender now + the sender->this
  /// channel lookahead (checked at send, and against the receiver clock
  /// when the inbox drains).
  void deliver_at(TimeNs at, EventQueue::Callback cb);

  /// Resume a coroutine at the current time (after already-scheduled events
  /// for this timestamp).  All synchronisation primitives wake waiters this
  /// way, which rules out re-entrant resumption.
  void post(std::coroutine_handle<> h);

  /// The engine whose event is currently executing on this thread (null
  /// outside any event callback).  Lets cross-shard senders identify their
  /// home shard without plumbing an Engine& through every call.
  static Engine* current() { return tls_current_; }

  /// Shard index within the owning ParallelEngine (0 for a standalone
  /// engine).
  int shard_id() const { return shard_; }
  ParallelEngine* group() const { return group_; }

  // --- processes -----------------------------------------------------------

  struct SpawnOptions {
    /// Daemons are excluded from deadlock detection and are torn down when
    /// the engine is destroyed (model: DPCL daemons blocking on requests).
    bool daemon = false;
  };

  /// Start a root process.  The body begins executing at the current
  /// simulation time, after events already scheduled for this timestamp.
  void spawn(Coro<void> body, std::string name, SpawnOptions options);
  void spawn(Coro<void> body, std::string name) {
    spawn(std::move(body), std::move(name), SpawnOptions{});
  }

  std::size_t processes_alive() const { return alive_; }
  std::size_t daemons_alive() const { return daemons_alive_; }

  /// Names of live non-daemon processes, sorted (deadlock reporting).
  std::vector<std::string> blocked_process_names() const;

  // --- running -------------------------------------------------------------

  /// Execute a single event.  Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains, a process fails, or `deadline` (if
  /// non-negative) is reached.  Rethrows the first process failure.  Throws
  /// DeadlockError if non-daemon processes remain after the queue drains.
  void run(TimeNs deadline = -1);

  /// Like run(), but blocked processes at the end are not an error.
  /// Returns the number of live non-daemon processes.
  std::size_t run_until_blocked(TimeNs deadline = -1);

  /// co_await engine.sleep(d): suspend the calling coroutine for d >= 0
  /// virtual nanoseconds.
  auto sleep(TimeNs duration) {
    DT_ASSERT(duration >= 0, "cannot sleep a negative duration");
    struct Awaiter {
      Engine& engine;
      TimeNs duration;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.schedule_after(duration, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, duration};
  }

  /// co_await engine.yield(): reschedule after other events at this time.
  auto yield() { return sleep(0); }

  std::uint64_t events_executed() const { return events_executed_; }

 private:
  friend class ParallelEngine;

  struct RootDriver;  // detached driver coroutine for a root process

  /// An event queued by a sibling shard, merged at window boundaries.
  /// (src_shard, src_seq) breaks same-timestamp ties deterministically.
  struct ForeignEvent {
    TimeNs at = 0;
    int src_shard = 0;
    std::uint64_t src_seq = 0;
    EventQueue::Callback cb;
  };

  RootDriver drive_root(Coro<void> body, std::uint64_t root_id, bool daemon);
  void record_failure(const std::string& name, std::exception_ptr error);
  void finish_root(std::uint64_t id, bool daemon);

  /// Execute every event strictly before `bound` (one conservative window).
  /// Never throws: failures are recorded for the coordinator.
  void run_window(TimeNs bound);

  /// Move the foreign inbox into the local queue, ordered by
  /// (at, src_shard, src_seq).  Coordinator-only, between windows.
  void drain_inbox();

  /// Engine state may only be touched from its own events (or from outside
  /// any engine, e.g. test or coordinator code between runs).
  void assert_local_context() const {
    DT_ASSERT(tls_current_ == nullptr || tls_current_ == this,
              "cross-engine call into shard ", shard_,
              " (use deliver_at for cross-shard communication)");
  }

  EventQueue queue_;
  TimeNs now_ = 0;
  std::size_t alive_ = 0;
  std::size_t daemons_alive_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t next_root_id_ = 0;

  struct RootInfo {
    std::coroutine_handle<> handle;
    std::string name;
    bool daemon = false;
  };
  std::unordered_map<std::uint64_t, RootInfo> roots_;

  std::exception_ptr failure_;
  std::string failure_name_;
  TimeNs failure_time_ = 0;

  // --- sharding ------------------------------------------------------------
  ParallelEngine* group_ = nullptr;  ///< owning group; null when standalone
  int shard_ = 0;
  std::uint64_t cross_seq_ = 0;  ///< ordinal of this shard's outgoing deliveries
  std::mutex inbox_mutex_;
  std::vector<ForeignEvent> inbox_;
  /// Cross-shard deliveries drained into this shard, indexed by sender
  /// shard (sized lazily; coordinator-only, like drain_inbox).
  std::vector<std::uint64_t> channel_from_;

  inline static thread_local Engine* tls_current_ = nullptr;
};

}  // namespace dyntrace::sim
