// The discrete-event simulation engine.
//
// The engine owns virtual time and the pending-event set, and drives root
// coroutine processes spawned with spawn().  Determinism: events at equal
// timestamps fire in scheduling order, and nothing in the engine consults
// wall-clock time or unordered iteration.
//
// Error model: an exception escaping a root process stops the run and is
// rethrown from run().  If all events drain while non-daemon processes are
// still blocked, run() throws DeadlockError naming the stuck processes.
#pragma once

#include <coroutine>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "support/common.hpp"

namespace dyntrace::sim {

/// Thrown by Engine::run() when non-daemon processes remain blocked with no
/// pending events.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(std::string msg) : Error(std::move(msg)) {}
};

class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- time and events -----------------------------------------------------

  TimeNs now() const { return now_; }

  EventId schedule_at(TimeNs at, EventQueue::Callback cb);
  EventId schedule_after(TimeNs delay, EventQueue::Callback cb);
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Resume a coroutine at the current time (after already-scheduled events
  /// for this timestamp).  All synchronisation primitives wake waiters this
  /// way, which rules out re-entrant resumption.
  void post(std::coroutine_handle<> h);

  // --- processes -----------------------------------------------------------

  struct SpawnOptions {
    /// Daemons are excluded from deadlock detection and are torn down when
    /// the engine is destroyed (model: DPCL daemons blocking on requests).
    bool daemon = false;
  };

  /// Start a root process.  The body begins executing at the current
  /// simulation time, after events already scheduled for this timestamp.
  void spawn(Coro<void> body, std::string name, SpawnOptions options);
  void spawn(Coro<void> body, std::string name) {
    spawn(std::move(body), std::move(name), SpawnOptions{});
  }

  std::size_t processes_alive() const { return alive_; }
  std::size_t daemons_alive() const { return daemons_alive_; }

  // --- running -------------------------------------------------------------

  /// Execute a single event.  Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains, a process fails, or `deadline` (if
  /// non-negative) is reached.  Rethrows the first process failure.  Throws
  /// DeadlockError if non-daemon processes remain after the queue drains.
  void run(TimeNs deadline = -1);

  /// Like run(), but blocked processes at the end are not an error.
  /// Returns the number of live non-daemon processes.
  std::size_t run_until_blocked(TimeNs deadline = -1);

  /// co_await engine.sleep(d): suspend the calling coroutine for d >= 0
  /// virtual nanoseconds.
  auto sleep(TimeNs duration) {
    DT_ASSERT(duration >= 0, "cannot sleep a negative duration");
    struct Awaiter {
      Engine& engine;
      TimeNs duration;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.schedule_after(duration, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, duration};
  }

  /// co_await engine.yield(): reschedule after other events at this time.
  auto yield() { return sleep(0); }

  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct RootDriver;  // detached driver coroutine for a root process

  RootDriver drive_root(Coro<void> body, std::uint64_t root_id, bool daemon);
  void record_failure(const std::string& name, std::exception_ptr error);
  void finish_root(std::uint64_t id, bool daemon);

  EventQueue queue_;
  TimeNs now_ = 0;
  std::size_t alive_ = 0;
  std::size_t daemons_alive_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t next_root_id_ = 0;

  struct RootInfo {
    std::coroutine_handle<> handle;
    std::string name;
    bool daemon = false;
  };
  std::unordered_map<std::uint64_t, RootInfo> roots_;

  std::exception_ptr failure_;
  std::string failure_name_;
};

}  // namespace dyntrace::sim
