#include "sim/time.hpp"

#include "support/strings.hpp"

namespace dyntrace::sim {

std::string format_duration(TimeNs t) {
  const bool negative = t < 0;
  const TimeNs a = negative ? -t : t;
  std::string body;
  if (a < kMicrosecond) {
    body = str::format("%lld ns", static_cast<long long>(a));
  } else if (a < kMillisecond) {
    body = str::format("%.3f us", to_microseconds(a));
  } else if (a < kSecond) {
    body = str::format("%.3f ms", to_milliseconds(a));
  } else {
    body = str::format("%.3f s", to_seconds(a));
  }
  return negative ? "-" + body : body;
}

}  // namespace dyntrace::sim
