// Conservative parallel discrete-event simulation (channel-clock YAWNS).
//
// A ParallelEngine owns N shard Engines and a worker-thread pool.  Each
// simulated process has a home shard (the proc layer maps node -> shard)
// and all of its events execute there; cross-shard communication goes
// through Engine::deliver_at, which enqueues into the receiver's foreign
// inbox mid-window.
//
// Every ordered shard pair (i, j) carries a channel lookahead L(i, j) > 0: a
// lower bound on the virtual latency of any message i sends to j (derived
// from the machine topology -- intra-node latency when the shards share a
// node, link latency otherwise).  Let D+(k, i) be the min-plus transitive
// closure of L over paths of >= 1 hop, so D+(i, i) is the cheapest
// round-trip through any sibling.  The run loop repeats three steps:
//   1. drain: merge every shard's foreign inbox into its event queue,
//      ordered by the deterministic (time, sender shard, sender seq) key;
//   2. bound: each shard i gets its own window bound
//          B(i) = min over shards k of next(k) + D+(k, i)
//      where next(k) is shard k's next event time (empty queues contribute
//      nothing).  The k = i term matters: a message i sends this window can
//      be reflected back by an otherwise-idle sibling, so i may only run to
//      its own cheapest round-trip.
//   3. window: every shard with next(i) < B(i) executes its events with
//      t < B(i) concurrently.
// Step 3 is safe because any event shard k executes does so at t >= next(k),
// and whatever it sends (directly or via intermediaries) reaches shard i no
// earlier than next(k) + D+(k, i) >= B(i) -- always a later window.  The
// shard holding the global minimum always has next < B, so every round makes
// progress.  Shards far ahead of (or far behind) their neighbours get bounds
// past the classic global window min_next + min L: they run fused windows
// without re-synchronising at the coordinator (counted by fused_windows()).
// Determinism: shard-local order is the sequential (time, seq) order, and
// cross-shard deliveries are merged by a key independent of thread timing,
// so outputs are bit-identical run to run and thread-count to thread-count.
//
// One shard degenerates to Engine::run() exactly.  See DESIGN.md §8 for the
// protocol and the determinism argument.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace dyntrace::sim {

class ParallelEngine {
 public:
  struct Options {
    /// Number of shard engines (and worker threads when > 1).
    int shards = 1;
    /// Uniform channel lookahead in virtual ns, installed on every ordered
    /// shard pair.  Every channel must be > 0 before run() when shards > 1
    /// (machine::Cluster derives and installs the per-pair values).
    TimeNs lookahead = 0;
  };

  explicit ParallelEngine(Options options);
  explicit ParallelEngine(int shards) : ParallelEngine(Options{shards, 0}) {}
  ~ParallelEngine();
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  Engine& shard(int index);
  const Engine& shard(int index) const;

  /// The minimum channel lookahead over all ordered shard pairs.
  TimeNs lookahead() const { return lookahead_; }
  /// Install `lookahead` on every ordered shard pair.
  void set_lookahead(TimeNs lookahead);

  /// Install the lookahead of the directed channel src -> dst: a lower
  /// bound on the virtual latency of any message src sends to dst.
  void set_channel_lookahead(int src, int dst, TimeNs lookahead);
  /// The installed lookahead of the directed channel src -> dst (0 when
  /// src == dst: same-shard delivery is not a channel).
  TimeNs channel_lookahead(int src, int dst) const;

  /// True while worker windows may be executing concurrently; deliver_at
  /// uses this to decide between direct scheduling and the inbox.
  bool in_parallel_phase() const {
    return parallel_phase_.load(std::memory_order_acquire);
  }

  /// Run all shards to completion under the conservative window protocol
  /// (or until `deadline`, if non-negative).  Rethrows the earliest process
  /// failure (by virtual time, then shard).  Throws DeadlockError naming
  /// every blocked process across all shards.  With one shard this is
  /// exactly Engine::run().
  void run(TimeNs deadline = -1);

  // --- statistics ----------------------------------------------------------

  std::uint64_t events_executed() const;   ///< summed over shards
  std::size_t processes_alive() const;     ///< summed over shards
  std::uint64_t windows() const { return windows_; }
  /// Coordinator rounds where at least one shard's channel-clock bound ran
  /// past the classic global window (min_next + min lookahead).
  std::uint64_t fused_windows() const { return fused_windows_; }
  /// Cross-shard deliveries drained into shard `dst` from shard `src`.
  std::uint64_t channel_deliveries(int src, int dst) const;

 private:
  void worker_loop(std::size_t shard_index);
  void start_workers();
  void stop_workers();
  /// Run one multi-shard window: shard `active[i]` executes up to
  /// `bounds[active[i]]`.  The coordinator runs active[0] itself.  Returns
  /// true if the completion barrier actually waited on a worker.
  bool dispatch_window(const std::vector<std::size_t>& active,
                       const std::vector<TimeNs>& bounds);
  /// Recompute the min-plus closure of the channel matrix (and the scalar
  /// lookahead_ minimum) if a channel changed.  Validates every channel > 0.
  void ensure_closure();
  /// Deadline stop point: drain every inbox, check nothing at or before the
  /// deadline is still pending, and advance every shard clock to it so a
  /// later run() resumes exactly where a sequential run would.
  void checkpoint_at_deadline(TimeNs deadline);
  [[noreturn]] void rethrow_earliest_failure();

  std::vector<std::unique_ptr<Engine>> shards_;
  /// Channel lookaheads, channels_[src * shards + dst]; diagonal unused.
  std::vector<TimeNs> channels_;
  /// Min-plus closure of channels_ over paths of >= 1 hop; the diagonal is
  /// the cheapest round-trip through any sibling.  Rebuilt by run() when a
  /// channel changed.
  std::vector<TimeNs> closure_;
  bool closure_dirty_ = true;
  TimeNs lookahead_ = 0;  ///< min over off-diagonal channels_
  std::atomic<bool> parallel_phase_{false};
  std::uint64_t windows_ = 0;
  std::uint64_t fused_windows_ = 0;

  // Worker pool: one thread per shard, started lazily on the first
  // multi-shard run.  Each worker has a private dispatch slot so a window
  // wakes exactly the shards that have work (the coordinator runs one
  // active shard itself instead of idling); completion is one shared
  // countdown.  On multi-core hosts both sides spin briefly before parking
  // -- windows are microseconds apart and a futex round-trip can cost more
  // than the window's events.
  struct WorkerSlot {
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<std::uint64_t> round{0};  ///< bumped per dispatch to this worker
    std::atomic<bool> stop{false};
    TimeNs bound = 0;  ///< published before `round`, read after it
    /// Wall nanoseconds the worker spent in its last window; published
    /// before the pending_ countdown, read by the coordinator after it.
    std::uint64_t wall_ns = 0;
  };
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::atomic<int> pending_{0};
  bool spin_ = false;  ///< hardware_concurrency > 1, set in the constructor
};

}  // namespace dyntrace::sim
