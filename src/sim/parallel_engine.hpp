// Conservative parallel discrete-event simulation (bounded-window / YAWNS).
//
// A ParallelEngine owns N shard Engines and a worker-thread pool.  Each
// simulated process has a home shard (the proc layer maps node -> shard)
// and all of its events execute there; cross-shard communication goes
// through Engine::deliver_at, which enqueues into the receiver's foreign
// inbox mid-window.
//
// The run loop repeats three steps:
//   1. drain: merge every shard's foreign inbox into its event queue,
//      ordered by the deterministic (time, sender shard, sender seq) key;
//   2. bound: compute B = min over shards of next-event-time, plus the
//      lookahead L (the minimum virtual latency of any cross-shard
//      message, derived from the machine model);
//   3. window: every shard executes its events with t < B concurrently.
// Step 3 is safe because an event executing at t can only influence a
// sibling shard at t + L >= B -- whatever it sends lands in a later window.
// Determinism: shard-local order is the sequential (time, seq) order, and
// cross-shard deliveries are merged by a key independent of thread timing,
// so outputs are bit-identical run to run and thread-count to thread-count.
//
// One shard degenerates to Engine::run() exactly.  See DESIGN.md §8 for the
// protocol and the determinism argument.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace dyntrace::sim {

class ParallelEngine {
 public:
  struct Options {
    /// Number of shard engines (and worker threads when > 1).
    int shards = 1;
    /// Conservative lookahead in virtual ns: a lower bound on the latency
    /// of any cross-shard interaction.  Must be > 0 before run() when
    /// shards > 1 (machine::Cluster derives and installs it).
    TimeNs lookahead = 0;
  };

  explicit ParallelEngine(Options options);
  explicit ParallelEngine(int shards) : ParallelEngine(Options{shards, 0}) {}
  ~ParallelEngine();
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  Engine& shard(int index);
  const Engine& shard(int index) const;

  TimeNs lookahead() const { return lookahead_; }
  void set_lookahead(TimeNs lookahead);

  /// True while worker windows may be executing concurrently; deliver_at
  /// uses this to decide between direct scheduling and the inbox.
  bool in_parallel_phase() const {
    return parallel_phase_.load(std::memory_order_acquire);
  }

  /// Run all shards to completion under the conservative window protocol
  /// (or until `deadline`, if non-negative).  Rethrows the earliest process
  /// failure (by virtual time, then shard).  Throws DeadlockError naming
  /// every blocked process across all shards.  With one shard this is
  /// exactly Engine::run().
  void run(TimeNs deadline = -1);

  // --- statistics ----------------------------------------------------------

  std::uint64_t events_executed() const;   ///< summed over shards
  std::size_t processes_alive() const;     ///< summed over shards
  std::uint64_t windows() const { return windows_; }

 private:
  void worker_loop(std::size_t shard_index);
  void start_workers();
  void stop_workers();
  void dispatch_window(TimeNs bound, const std::vector<std::size_t>& active);
  [[noreturn]] void rethrow_earliest_failure();

  std::vector<std::unique_ptr<Engine>> shards_;
  TimeNs lookahead_ = 0;
  std::atomic<bool> parallel_phase_{false};
  std::uint64_t windows_ = 0;

  // Worker pool: one thread per shard, started lazily on the first
  // multi-shard run.  Each worker has a private dispatch slot so a window
  // wakes exactly the shards that have work (the coordinator runs one
  // active shard itself instead of idling); completion is one shared
  // countdown.  On multi-core hosts both sides spin briefly before parking
  // -- windows are microseconds apart and a futex round-trip can cost more
  // than the window's events.
  struct WorkerSlot {
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<std::uint64_t> round{0};  ///< bumped per dispatch to this worker
    std::atomic<bool> stop{false};
    TimeNs bound = 0;  ///< published before `round`, read after it
  };
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::atomic<int> pending_{0};
  bool spin_ = false;  ///< hardware_concurrency > 1, set in the constructor
};

}  // namespace dyntrace::sim
