// Coro<T>: the coroutine type simulated processes are written in.
//
// A Coro is lazy: creating one does not run any code.  It starts when it is
// co_await-ed by another coroutine (or spawned as a root process on the
// Engine).  On completion it resumes its awaiter via symmetric transfer, so
// arbitrarily deep call chains of simulated procedures cost no host stack.
//
// Exceptions thrown inside a Coro propagate to the awaiter, exactly like a
// normal function call; the Engine turns exceptions that escape a root
// process into a simulation failure.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "support/common.hpp"

namespace dyntrace::sim {

template <typename T>
class Coro;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started simulated procedure returning T.
template <typename T = void>
class [[nodiscard]] Coro {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Coro get_return_object() {
      return Coro(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Coro() = default;
  Coro(Coro&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Coro& operator=(Coro&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  // --- awaitable interface -------------------------------------------------
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    DT_ASSERT(handle_ && !handle_.done(), "awaiting an invalid or finished Coro");
    handle_.promise().continuation = awaiter;
    return handle_;  // start the child coroutine
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    DT_ASSERT(p.value.has_value(), "Coro finished without a value");
    return std::move(*p.value);
  }

  /// For Engine::spawn: release ownership of the handle.
  std::coroutine_handle<promise_type> release() { return std::exchange(handle_, {}); }

 private:
  explicit Coro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// void specialization.
template <>
class [[nodiscard]] Coro<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Coro get_return_object() {
      return Coro(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Coro() = default;
  Coro(Coro&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Coro& operator=(Coro&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    DT_ASSERT(handle_ && !handle_.done(), "awaiting an invalid or finished Coro");
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

  std::coroutine_handle<promise_type> release() { return std::exchange(handle_, {}); }

 private:
  friend struct promise_type;
  explicit Coro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace dyntrace::sim
