// FaultInjector: the runtime oracle that turns a FaultPlan into concrete
// fault decisions during a simulated run.
//
// Determinism is the design constraint (the stack must stay bit-identical
// across --sim-threads for a fixed plan + seed), so every decision is a
// pure function of *message identity*, never of global arrival order:
//
//   * daemon/rank deaths are preset time thresholds, read-only after
//     construction -- liveness is `now < dead_at`, no arming events;
//   * a message's fate hashes (seed, action, src, dst, per-stream ordinal);
//     the ordinal counter is keyed by (action, src, dst), and each such
//     stream is advanced by exactly one deterministic sender, so the count
//     a message observes does not depend on shard interleaving (the map
//     itself is mutex-protected for cross-shard memory safety);
//   * shard tears are keyed by (pid, run index), both deterministic.
//
// The injector is passive: layers consult it at their own hook points
// (dpcl request paths, mpi::Rank::send_raw, vt::TraceShard::spill) and it
// never schedules events itself.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "fault/plan.hpp"
#include "fault/report.hpp"

namespace dyntrace::fault {

/// What happens to one message in flight.
struct MessageFate {
  bool drop = false;         ///< vanish without a trace
  int duplicates = 0;        ///< extra copies delivered alongside the original
  double delay_factor = 1.0; ///< multiplies the in-flight delay
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  RunReport& report() { return report_; }
  const RunReport& report() const { return report_; }

  // --- liveness (pure time functions over preset thresholds) ---------------

  /// False while the node's daemon is permanently dead (kill-daemon) or
  /// inside a flap-daemon downtime window.  A flapping daemon drops the
  /// requests it receives while down and serves normally once restarted.
  bool daemon_alive(int node, sim::TimeNs now) const;
  /// Rank liveness.  `job` scopes the query in multi-job runs (rank ids are
  /// job-local): an action carrying job= only matches queries naming that
  /// job, while an unscoped action matches every query.  Single-job callers
  /// pass nothing and see exactly the pre-multi-job behaviour.
  bool rank_alive(int rank, sim::TimeNs now, std::string_view job = {}) const;
  /// When the node's daemon dies *permanently* (kNever if it does not).
  /// Flap windows do not count: a flapped daemon always comes back.
  sim::TimeNs daemon_dead_at(int node) const;
  /// Ranks dead at `now`, ascending; same job scoping as rank_alive().
  std::vector<int> dead_ranks(sim::TimeNs now, std::string_view job = {}) const;
  /// True when the plan can make this node's daemon sick without killing
  /// it for good (flap-daemon or degrade-daemon actions name it).
  bool daemon_gray_prone(int node) const;

  /// Combined degrade-daemon service-time multiplier for `node` at `now`
  /// (1.0 outside every window).  Read-only; callable anywhere.
  double daemon_degrade_factor(int node, sim::TimeNs now) const;

  /// The plan's storm actions as (at, sessions) pairs, ascending by time.
  /// Consumed by the svcapp scenario harness to burst-admit sessions.
  std::vector<std::pair<sim::TimeNs, int>> storms() const;

  // --- messages -------------------------------------------------------------

  /// Decide the fate of one message.  Advances the per-(action, src, dst)
  /// ordinal streams, so call exactly once per physical send.
  MessageFate message_fate(Channel channel, int src, int dst, sim::TimeNs now);

  /// Combined slow-node multiplier for a message touching `node` at `now`
  /// (1.0 outside every stall window).  Read-only; callable anywhere.
  double stall_factor(int node, sim::TimeNs now) const;

  // --- trace shards ---------------------------------------------------------

  /// Bytes of spill run `run_index` of pid's shard that actually reach the
  /// disk (== `bytes` when no tear action matches).  A short return tears
  /// the run; the event is recorded in the report.  `job` scopes the query
  /// as in rank_alive().
  std::size_t spill_bytes(std::int32_t pid, std::uint64_t run_index, std::size_t bytes,
                          std::string_view job = {});

 private:
  bool action_matches_message(const FaultAction& action, std::size_t action_index,
                              Channel channel, int src, int dst);

  struct RankDeath {
    int rank = -1;
    sim::TimeNs at = 0;
    std::string job;  ///< empty = every job

    auto operator<=>(const RankDeath&) const = default;
  };

  FaultPlan plan_;
  RunReport report_;
  std::vector<std::pair<int, sim::TimeNs>> daemon_dead_;  ///< (node, at), ascending node
  std::vector<RankDeath> rank_dead_;                      ///< ascending rank
  bool has_message_actions_[3] = {false, false, false};   ///< per Channel
  bool has_flap_actions_ = false;
  bool has_degrade_actions_ = false;

  std::mutex mutex_;  ///< guards counters_ (cross-shard memory safety only)
  std::map<std::tuple<std::size_t, int, int>, std::uint64_t> counters_;
};

}  // namespace dyntrace::fault
