#include "fault/report.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace dyntrace::fault {

namespace {

bool entry_before(const RunReport::Entry& a, const RunReport::Entry& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.detail != b.detail) return a.detail < b.detail;
  return a.ranks < b.ranks;
}

}  // namespace

void RunReport::add(sim::TimeNs time, std::string kind, std::string detail,
                    std::vector<int> ranks) {
  std::sort(ranks.begin(), ranks.end());
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(Entry{time, std::move(kind), std::move(detail), std::move(ranks)});
}

bool RunReport::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.empty();
}

std::size_t RunReport::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<RunReport::Entry> RunReport::entries() const {
  std::vector<Entry> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(), entry_before);
  return out;
}

std::vector<RunReport::Entry> RunReport::entries_of(const std::string& kind) const {
  std::vector<Entry> out;
  for (auto& entry : entries()) {
    if (entry.kind == kind) out.push_back(std::move(entry));
  }
  return out;
}

std::vector<int> RunReport::lost_ranks() const {
  std::vector<int> out;
  for (const auto& entry : entries()) {
    if (entry.kind != "daemon-lost" && entry.kind != "rank-lost") continue;
    out.insert(out.end(), entry.ranks.begin(), entry.ranks.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string RunReport::render() const {
  std::string out;
  for (const auto& entry : entries()) {
    out += str::format("t=%.6fs %-14s %s", sim::to_seconds(entry.time), entry.kind.c_str(),
                       entry.detail.c_str());
    if (!entry.ranks.empty()) {
      out += " ranks=";
      for (std::size_t i = 0; i < entry.ranks.size(); ++i) {
        if (i > 0) out += ",";
        out += str::format("%d", entry.ranks[i]);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace dyntrace::fault
