#include "fault/plan.hpp"

#include <fstream>
#include <sstream>

#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::fault {

namespace {

struct KeyValue {
  std::string key;
  std::string value;
};

std::vector<std::string> split_ws(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

sim::TimeNs parse_time(const std::string& text, const std::string& where) {
  if (text == "never") return kNever;
  std::size_t suffix = text.size();
  while (suffix > 0 && !(text[suffix - 1] >= '0' && text[suffix - 1] <= '9')) --suffix;
  const std::string digits = text.substr(0, suffix);
  const std::string unit = text.substr(suffix);
  DT_EXPECT(!digits.empty(), where, ": bad time '", text, "'");
  double value = 0;
  try {
    value = std::stod(digits);
  } catch (const std::exception&) {
    fail(where, ": bad time '", text, "'");
  }
  if (unit.empty() || unit == "ns") return static_cast<sim::TimeNs>(value);
  if (unit == "us") return sim::microseconds(value);
  if (unit == "ms") return sim::milliseconds(value);
  if (unit == "s") return sim::seconds(value);
  fail(where, ": unknown time unit '", unit, "' (use ns/us/ms/s)");
}

Channel parse_channel(const std::string& text, const std::string& where) {
  if (text == "daemon") return Channel::kDaemon;
  if (text == "overlay") return Channel::kOverlay;
  if (text == "app") return Channel::kApp;
  fail(where, ": unknown channel '", text, "' (daemon, overlay, app)");
}

class ActionParser {
 public:
  ActionParser(const std::vector<std::string>& tokens, std::string where)
      : where_(std::move(where)) {
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      DT_EXPECT(eq != std::string::npos && eq > 0, where_, ": expected key=value, got '",
                tokens[i], "'");
      pairs_.push_back(KeyValue{tokens[i].substr(0, eq), tokens[i].substr(eq + 1)});
    }
  }

  std::optional<std::string> take(const std::string& key) {
    for (auto it = pairs_.begin(); it != pairs_.end(); ++it) {
      if (it->key == key) {
        std::string value = it->value;
        pairs_.erase(it);
        return value;
      }
    }
    return std::nullopt;
  }

  void apply_int(const std::string& key, int* out) {
    if (auto v = take(key)) *out = static_cast<int>(parse_int(*v));
  }
  void apply_i64(const std::string& key, std::int64_t* out) {
    if (auto v = take(key)) *out = parse_int(*v);
  }
  void apply_u64(const std::string& key, std::uint64_t* out) {
    if (auto v = take(key)) *out = static_cast<std::uint64_t>(parse_int(*v));
  }
  void apply_double(const std::string& key, double* out) {
    if (auto v = take(key)) *out = parse_double(*v);
  }
  void apply_time(const std::string& key, sim::TimeNs* out) {
    if (auto v = take(key)) *out = parse_time(*v, where_);
  }
  void apply_channel(const std::string& key, Channel* out) {
    if (auto v = take(key)) *out = parse_channel(*v, where_);
  }

  void finish() const {
    DT_EXPECT(pairs_.empty(), where_, ": unknown key '",
              pairs_.empty() ? "" : pairs_.front().key, "'");
  }

 private:
  std::int64_t parse_int(const std::string& text) const {
    try {
      return std::stoll(text);
    } catch (const std::exception&) {
      fail(where_, ": bad integer '", text, "'");
    }
  }
  double parse_double(const std::string& text) const {
    try {
      return std::stod(text);
    } catch (const std::exception&) {
      fail(where_, ": bad number '", text, "'");
    }
  }

  std::string where_;
  std::vector<KeyValue> pairs_;
};

void parse_message_selectors(ActionParser& p, FaultAction* action, const std::string& where) {
  p.apply_channel("channel", &action->channel);
  p.apply_int("src", &action->src);
  p.apply_int("dst", &action->dst);
  p.apply_double("prob", &action->probability);
  p.apply_i64("nth", &action->nth);
  p.apply_i64("skip", &action->skip);
  p.apply_i64("count", &action->count);
  DT_EXPECT(action->probability >= 0 || action->nth >= 0 || action->count >= 0, where,
            ": message action needs one of prob=, nth= or count=");
  DT_EXPECT(action->probability <= 1.0, where, ": prob must be in [0, 1]");
}

std::string format_time(sim::TimeNs t) {
  if (t == kNever) return "never";
  if (t % sim::seconds(1) == 0) return str::format("%llds", static_cast<long long>(t / sim::seconds(1)));
  if (t % sim::milliseconds(1) == 0)
    return str::format("%lldms", static_cast<long long>(t / sim::milliseconds(1)));
  if (t % sim::microseconds(1) == 0)
    return str::format("%lldus", static_cast<long long>(t / sim::microseconds(1)));
  return str::format("%lldns", static_cast<long long>(t));
}

void append_message_selectors(std::string& out, const FaultAction& a) {
  out += str::format(" channel=%s", to_string(a.channel));
  if (a.src >= 0) out += str::format(" src=%d", a.src);
  if (a.dst >= 0) out += str::format(" dst=%d", a.dst);
  if (a.probability >= 0) out += str::format(" prob=%g", a.probability);
  if (a.nth >= 0) out += str::format(" nth=%lld", static_cast<long long>(a.nth));
  if (a.skip > 0) out += str::format(" skip=%lld", static_cast<long long>(a.skip));
  if (a.count >= 0) out += str::format(" count=%lld", static_cast<long long>(a.count));
}

}  // namespace

const char* to_string(Channel channel) {
  switch (channel) {
    case Channel::kDaemon: return "daemon";
    case Channel::kOverlay: return "overlay";
    case Channel::kApp: return "app";
  }
  return "?";
}

FaultPlan FaultPlan::parse(std::string_view text, const std::string& origin) {
  FaultPlan plan;
  int line_no = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;
    const std::string where = str::format("%s:%d", origin.c_str(), line_no);
    const std::string& verb = tokens[0];

    if (verb == "seed") {
      DT_EXPECT(tokens.size() == 2, where, ": seed takes one value");
      try {
        plan.seed = std::stoull(tokens[1]);
      } catch (const std::exception&) {
        fail(where, ": bad seed '", tokens[1], "'");
      }
      continue;
    }

    FaultAction action;
    ActionParser p(tokens, where);
    if (verb == "kill-daemon") {
      action.kind = FaultAction::Kind::kKillDaemon;
      p.apply_int("node", &action.node);
      p.apply_time("at", &action.at);
      DT_EXPECT(action.node >= 0, where, ": kill-daemon needs node=");
    } else if (verb == "kill-rank") {
      action.kind = FaultAction::Kind::kKillRank;
      p.apply_int("rank", &action.rank);
      p.apply_time("at", &action.at);
      if (auto v = p.take("job")) action.job = *v;
      DT_EXPECT(action.rank >= 0, where, ": kill-rank needs rank=");
    } else if (verb == "drop") {
      action.kind = FaultAction::Kind::kDrop;
      parse_message_selectors(p, &action, where);
    } else if (verb == "dup") {
      action.kind = FaultAction::Kind::kDup;
      parse_message_selectors(p, &action, where);
    } else if (verb == "delay") {
      action.kind = FaultAction::Kind::kDelay;
      parse_message_selectors(p, &action, where);
      p.apply_double("factor", &action.factor);
      DT_EXPECT(action.factor >= 1.0, where, ": delay factor must be >= 1");
    } else if (verb == "stall") {
      action.kind = FaultAction::Kind::kStall;
      p.apply_int("node", &action.node);
      p.apply_time("from", &action.at);
      p.apply_time("until", &action.until);
      p.apply_double("factor", &action.factor);
      DT_EXPECT(action.node >= 0, where, ": stall needs node=");
      DT_EXPECT(action.factor >= 1.0, where, ": stall factor must be >= 1");
      DT_EXPECT(action.until > action.at, where, ": stall window is empty");
    } else if (verb == "tear-shard") {
      action.kind = FaultAction::Kind::kTearShard;
      p.apply_int("rank", &action.rank);
      p.apply_u64("spill", &action.spill);
      p.apply_double("keep", &action.keep);
      if (auto v = p.take("job")) action.job = *v;
      DT_EXPECT(action.rank >= 0, where, ": tear-shard needs rank=");
      DT_EXPECT(action.keep >= 0 && action.keep < 1.0, where,
                ": tear-shard keep must be in [0, 1)");
    } else if (verb == "flap-daemon") {
      action.kind = FaultAction::Kind::kFlapDaemon;
      p.apply_int("node", &action.node);
      p.apply_time("period", &action.period);
      p.apply_time("downtime", &action.downtime);
      p.apply_time("from", &action.at);
      p.apply_time("until", &action.until);
      DT_EXPECT(action.node >= 0, where, ": flap-daemon needs node=");
      DT_EXPECT(action.period > 0, where, ": flap-daemon needs period=");
      DT_EXPECT(action.downtime > 0 && action.downtime < action.period, where,
                ": flap-daemon downtime must be in (0, period)");
      DT_EXPECT(action.until > action.at, where, ": flap-daemon window is empty");
    } else if (verb == "degrade-daemon") {
      action.kind = FaultAction::Kind::kDegradeDaemon;
      p.apply_int("node", &action.node);
      p.apply_double("factor", &action.factor);
      p.apply_time("from", &action.at);
      p.apply_time("until", &action.until);
      DT_EXPECT(action.node >= 0, where, ": degrade-daemon needs node=");
      DT_EXPECT(action.factor >= 1.0, where, ": degrade-daemon factor must be >= 1");
      DT_EXPECT(action.until > action.at, where, ": degrade-daemon window is empty");
    } else if (verb == "storm") {
      action.kind = FaultAction::Kind::kStorm;
      p.apply_i64("sessions", &action.sessions);
      p.apply_time("at", &action.at);
      DT_EXPECT(action.sessions > 0, where, ": storm needs sessions=");
    } else {
      fail(where, ": unknown fault verb '", verb,
           "' (seed, kill-daemon, kill-rank, drop, dup, delay, stall, tear-shard, "
           "flap-daemon, degrade-daemon, storm)");
    }
    p.finish();
    plan.actions.push_back(action);
  }
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  DT_EXPECT(in.good(), "cannot open fault plan '", path, "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), path);
}

std::string FaultPlan::to_text() const {
  std::string out = str::format("seed %llu\n", static_cast<unsigned long long>(seed));
  for (const FaultAction& a : actions) {
    switch (a.kind) {
      case FaultAction::Kind::kKillDaemon:
        out += str::format("kill-daemon node=%d at=%s", a.node, format_time(a.at).c_str());
        break;
      case FaultAction::Kind::kKillRank:
        out += str::format("kill-rank rank=%d at=%s", a.rank, format_time(a.at).c_str());
        if (!a.job.empty()) out += str::format(" job=%s", a.job.c_str());
        break;
      case FaultAction::Kind::kDrop:
        out += "drop";
        append_message_selectors(out, a);
        break;
      case FaultAction::Kind::kDup:
        out += "dup";
        append_message_selectors(out, a);
        break;
      case FaultAction::Kind::kDelay:
        out += "delay";
        append_message_selectors(out, a);
        out += str::format(" factor=%g", a.factor);
        break;
      case FaultAction::Kind::kStall:
        out += str::format("stall node=%d from=%s until=%s factor=%g", a.node,
                           format_time(a.at).c_str(), format_time(a.until).c_str(), a.factor);
        break;
      case FaultAction::Kind::kTearShard:
        out += str::format("tear-shard rank=%d spill=%llu keep=%g", a.rank,
                           static_cast<unsigned long long>(a.spill), a.keep);
        if (!a.job.empty()) out += str::format(" job=%s", a.job.c_str());
        break;
      case FaultAction::Kind::kFlapDaemon:
        out += str::format("flap-daemon node=%d period=%s downtime=%s", a.node,
                           format_time(a.period).c_str(), format_time(a.downtime).c_str());
        if (a.at != 0) out += str::format(" from=%s", format_time(a.at).c_str());
        if (a.until != kNever) out += str::format(" until=%s", format_time(a.until).c_str());
        break;
      case FaultAction::Kind::kDegradeDaemon:
        out += str::format("degrade-daemon node=%d factor=%g", a.node, a.factor);
        if (a.at != 0) out += str::format(" from=%s", format_time(a.at).c_str());
        if (a.until != kNever) out += str::format(" until=%s", format_time(a.until).c_str());
        break;
      case FaultAction::Kind::kStorm:
        out += str::format("storm sessions=%lld at=%s", static_cast<long long>(a.sessions),
                           format_time(a.at).c_str());
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace dyntrace::fault
