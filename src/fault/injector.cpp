#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::fault {

namespace {

constexpr std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return SplitMix64(h ^ v).next();
}

/// Uniform draw in [0, 1) from a pure hash of the message identity.
double unit_draw(std::uint64_t seed, std::size_t action_index, Channel channel, int src,
                 int dst, std::uint64_t ordinal) {
  std::uint64_t h = fold(seed, 0x6661756c74ULL);  // "fault"
  h = fold(h, static_cast<std::uint64_t>(action_index));
  h = fold(h, static_cast<std::uint64_t>(channel));
  h = fold(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(src)));
  h = fold(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(dst)));
  h = fold(h, ordinal);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const FaultAction& action : plan_.actions) {
    switch (action.kind) {
      case FaultAction::Kind::kKillDaemon:
        daemon_dead_.emplace_back(action.node, action.at);
        break;
      case FaultAction::Kind::kKillRank:
        rank_dead_.push_back(RankDeath{action.rank, action.at, action.job});
        break;
      case FaultAction::Kind::kDrop:
      case FaultAction::Kind::kDup:
      case FaultAction::Kind::kDelay:
        has_message_actions_[static_cast<std::size_t>(action.channel)] = true;
        break;
      case FaultAction::Kind::kFlapDaemon:
        has_flap_actions_ = true;
        break;
      case FaultAction::Kind::kDegradeDaemon:
        has_degrade_actions_ = true;
        break;
      case FaultAction::Kind::kStall:
      case FaultAction::Kind::kTearShard:
      case FaultAction::Kind::kStorm:
        break;
    }
  }
  std::sort(daemon_dead_.begin(), daemon_dead_.end());
  std::sort(rank_dead_.begin(), rank_dead_.end());
}

sim::TimeNs FaultInjector::daemon_dead_at(int node) const {
  for (const auto& [dead_node, at] : daemon_dead_) {
    if (dead_node == node) return at;
  }
  return kNever;
}

bool FaultInjector::daemon_alive(int node, sim::TimeNs now) const {
  if (now >= daemon_dead_at(node)) return false;
  if (has_flap_actions_) {
    for (const FaultAction& action : plan_.actions) {
      if (action.kind != FaultAction::Kind::kFlapDaemon || action.node != node) continue;
      if (now < action.at || now >= action.until) continue;
      if ((now - action.at) % action.period < action.downtime) return false;
    }
  }
  return true;
}

bool FaultInjector::daemon_gray_prone(int node) const {
  if (!has_flap_actions_ && !has_degrade_actions_) return false;
  for (const FaultAction& action : plan_.actions) {
    if ((action.kind == FaultAction::Kind::kFlapDaemon ||
         action.kind == FaultAction::Kind::kDegradeDaemon) &&
        action.node == node) {
      return true;
    }
  }
  return false;
}

double FaultInjector::daemon_degrade_factor(int node, sim::TimeNs now) const {
  if (!has_degrade_actions_) return 1.0;
  double factor = 1.0;
  for (const FaultAction& action : plan_.actions) {
    if (action.kind != FaultAction::Kind::kDegradeDaemon || action.node != node) continue;
    if (now >= action.at && now < action.until) factor *= action.factor;
  }
  return factor;
}

std::vector<std::pair<sim::TimeNs, int>> FaultInjector::storms() const {
  std::vector<std::pair<sim::TimeNs, int>> out;
  for (const FaultAction& action : plan_.actions) {
    if (action.kind != FaultAction::Kind::kStorm) continue;
    out.emplace_back(action.at, static_cast<int>(action.sessions));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool FaultInjector::rank_alive(int rank, sim::TimeNs now, std::string_view job) const {
  for (const RankDeath& d : rank_dead_) {
    if (d.rank != rank) continue;
    if (!d.job.empty() && d.job != job) continue;
    if (now >= d.at) return false;
  }
  return true;
}

std::vector<int> FaultInjector::dead_ranks(sim::TimeNs now, std::string_view job) const {
  std::vector<int> out;
  for (const RankDeath& d : rank_dead_) {
    if (!d.job.empty() && d.job != job) continue;
    if (now < d.at) continue;
    if (out.empty() || out.back() != d.rank) out.push_back(d.rank);
  }
  return out;
}

bool FaultInjector::action_matches_message(const FaultAction& action,
                                           std::size_t action_index, Channel channel,
                                           int src, int dst) {
  if (action.channel != channel) return false;
  if (action.src >= 0 && action.src != src) return false;
  if (action.dst >= 0 && action.dst != dst) return false;
  // Ordinal within this action's (src, dst) stream; advanced exactly once
  // per eligible message by its (single, deterministic) sender.
  std::uint64_t ordinal = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ordinal = counters_[std::make_tuple(action_index, src, dst)]++;
  }
  if (action.probability >= 0) {
    if (ordinal < static_cast<std::uint64_t>(action.skip)) return false;
    return unit_draw(plan_.seed, action_index, channel, src, dst, ordinal) <
           action.probability;
  }
  if (action.nth >= 0) return ordinal == static_cast<std::uint64_t>(action.nth);
  return ordinal >= static_cast<std::uint64_t>(action.skip) &&
         ordinal < static_cast<std::uint64_t>(action.skip + action.count);
}

MessageFate FaultInjector::message_fate(Channel channel, int src, int dst,
                                        sim::TimeNs now) {
  (void)now;
  MessageFate fate;
  if (!has_message_actions_[static_cast<std::size_t>(channel)]) return fate;
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    const FaultAction& action = plan_.actions[i];
    switch (action.kind) {
      case FaultAction::Kind::kDrop:
        if (action_matches_message(action, i, channel, src, dst)) fate.drop = true;
        break;
      case FaultAction::Kind::kDup:
        if (action_matches_message(action, i, channel, src, dst)) ++fate.duplicates;
        break;
      case FaultAction::Kind::kDelay:
        if (action_matches_message(action, i, channel, src, dst)) {
          fate.delay_factor *= action.factor;
        }
        break;
      default:
        break;
    }
  }
  if (fate.drop || fate.duplicates > 0 || fate.delay_factor != 1.0) {
    telemetry::Registry& reg = telemetry::current();
    const telemetry::Metrics& tm = reg.metrics();
    if (fate.drop) reg.add(tm.fault_drops);
    if (fate.duplicates > 0) reg.add(tm.fault_dups, static_cast<std::uint64_t>(fate.duplicates));
    if (fate.delay_factor != 1.0) reg.add(tm.fault_delays);
  }
  return fate;
}

double FaultInjector::stall_factor(int node, sim::TimeNs now) const {
  double factor = 1.0;
  for (const FaultAction& action : plan_.actions) {
    if (action.kind != FaultAction::Kind::kStall || action.node != node) continue;
    if (now >= action.at && now < action.until) factor *= action.factor;
  }
  return factor;
}

std::size_t FaultInjector::spill_bytes(std::int32_t pid, std::uint64_t run_index,
                                       std::size_t bytes, std::string_view job) {
  for (const FaultAction& action : plan_.actions) {
    if (action.kind != FaultAction::Kind::kTearShard) continue;
    if (action.rank != pid || action.spill != run_index) continue;
    if (!action.job.empty() && action.job != job) continue;
    const auto kept = static_cast<std::size_t>(
        std::floor(static_cast<double>(bytes) * action.keep));
    {
      telemetry::Registry& reg = telemetry::current();
      reg.add(reg.metrics().fault_tears);
    }
    report_.add(0, "shard-torn",
                str::format("pid=%d run=%llu kept %zu of %zu bytes", pid,
                            static_cast<unsigned long long>(run_index), kept, bytes),
                {pid});
    return kept;
  }
  return bytes;
}

}  // namespace dyntrace::fault
