// Run report for fault-tolerant runs: what broke, what the stack did
// about it, and which ranks were affected.
//
// Entries are appended concurrently from any shard (each append takes the
// mutex) but all ordering-sensitive output is sorted by (virtual time,
// kind, detail, ranks) at read time, so the rendered report is
// bit-identical across --sim-threads values.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace dyntrace::fault {

class RunReport {
 public:
  struct Entry {
    sim::TimeNs time = 0;
    std::string kind;        ///< "daemon-lost", "rank-lost", "partial-sync", "degrade", ...
    std::string detail;      ///< human-readable specifics
    std::vector<int> ranks;  ///< affected ranks (sorted), empty when n/a
  };

  RunReport() = default;
  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;

  /// Thread-safe append (callable from any shard).
  void add(sim::TimeNs time, std::string kind, std::string detail, std::vector<int> ranks = {});

  bool empty() const;
  std::size_t size() const;

  /// All entries, deterministically sorted.
  std::vector<Entry> entries() const;

  /// Entries of one kind, deterministically sorted.
  std::vector<Entry> entries_of(const std::string& kind) const;

  /// Union of ranks across "daemon-lost" / "rank-lost" entries, sorted.
  std::vector<int> lost_ranks() const;

  /// Human-readable rendering (one line per entry).
  std::string render() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace dyntrace::fault
