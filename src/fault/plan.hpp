// Deterministic fault plans (the robustness harness's input).
//
// A FaultPlan is a seeded list of fault actions injected into a simulated
// run: daemon and rank deaths at chosen virtual times, message drops /
// duplications / delays on the control-plane channels, whole-node stalls,
// and torn trace-shard spills.  Plans are plain text so experiments can be
// checked into configs/ and replayed bit-identically:
//
//     seed 42
//     kill-daemon node=3 at=150s
//     kill-rank rank=5 at=150s
//     kill-rank job=smg98 rank=5 at=150s
//     tear-shard job=sppm rank=7 spill=0 keep=0.5
//     drop channel=daemon prob=0.05
//     drop channel=overlay src=3 dst=0 nth=0
//     dup channel=overlay prob=0.5
//     delay channel=daemon factor=10 prob=1.0
//     stall node=2 from=10s until=20s factor=4
//     tear-shard rank=7 spill=0 keep=0.5
//     flap-daemon node=2 period=120s downtime=30s from=100s until=500s
//     degrade-daemon node=1 factor=1000 from=100s until=300s
//     storm sessions=64 at=40s
//
// The gray-failure verbs model sick-but-not-dead components: `flap-daemon`
// kills and restarts a node's comm daemon on a fixed cadence (dead for
// `downtime` out of every `period`, starting at `from`), `degrade-daemon`
// leaves the daemon alive but multiplies its service time by `factor`
// inside [from, until), and `storm` asks the svcapp scenario harness to
// burst-admit `sessions` extra sessions at `at`.  All three are pure time
// functions of the plan -- no RNG, no arming events -- so runs stay
// bit-identical across --sim-threads.
//
// In multi-job runs (DESIGN.md §15) rank ids are job-local, so the
// rank-scoped verbs `kill-rank` and `tear-shard` accept `job=<name>` to pick
// one job; without it the action applies to the matching rank of *every*
// job (and, in a single-job run, to the one job regardless of its name).
// A job-named action is inert in runs that never pass a job name.
//
// Times accept the suffixes ns/us/ms/s (bare numbers are nanoseconds).
// Message actions select eligible messages per (action, src, dst) stream:
// `nth=K` matches the K-th, `skip=S count=N` matches a window, and
// `prob=p` draws from a hash of (seed, stream, ordinal) -- never from
// shared RNG state, so a message's fate is independent of the order other
// shards make progress (see DESIGN.md §9).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace dyntrace::fault {

/// Which traffic class a message action applies to.  kDaemon covers DPCL
/// request/ack/callback traffic (src/dst are *node* ids); kOverlay covers
/// the statistics-overlay tag band (src/dst are *rank* ids); kApp is the
/// application's own MPI traffic (delays and stalls only make sense here --
/// dropping app messages deadlocks the workload, which is the app's bug to
/// model, not the control plane's).
enum class Channel : std::uint8_t { kDaemon = 0, kOverlay = 1, kApp = 2 };

const char* to_string(Channel channel);

/// First tag of the statistics-overlay band.  Owned here (not in control/)
/// so the MPI layer can classify traffic without depending on the overlay.
inline constexpr int kOverlayTagBase = 1'000'000'000;

/// Sentinel for "never happens" times.
inline constexpr sim::TimeNs kNever = sim::TimeNs{0x7fffffffffffffff};

struct FaultAction {
  enum class Kind : std::uint8_t {
    kKillDaemon,   ///< the node's comm daemon stops serving at `at`
    kKillRank,     ///< the rank leaves the control-plane membership at `at`
    kDrop,         ///< eligible messages vanish in flight
    kDup,          ///< eligible messages are delivered twice
    kDelay,        ///< eligible messages take `factor` times as long
    kStall,        ///< messages touching `node` slow by `factor` in [at, until)
    kTearShard,    ///< spill `spill` of rank `rank`'s trace shard is cut at `keep`
    kFlapDaemon,   ///< daemon dead for `downtime` of every `period` in [at, until)
    kDegradeDaemon,///< daemon alive but `factor` times slower in [at, until)
    kStorm,        ///< svcapp bursts `sessions` extra sessions at `at`
  };

  Kind kind = Kind::kDrop;
  Channel channel = Channel::kDaemon;
  std::string job;              ///< kill-rank / tear-shard: job scope; empty = all jobs
  int node = -1;                ///< kill-daemon / stall target
  int rank = -1;                ///< kill-rank / tear-shard target
  int src = -1;                 ///< message source filter; -1 = any
  int dst = -1;                 ///< message destination filter; -1 = any
  sim::TimeNs at = 0;           ///< kill time / stall window start
  sim::TimeNs until = kNever;   ///< stall window end (exclusive)
  double probability = -1.0;    ///< hash-drawn eligibility when >= 0
  std::int64_t nth = -1;        ///< match only the nth eligible message
  std::int64_t skip = 0;        ///< window matching: first `skip` pass through
  std::int64_t count = -1;      ///< window matching: next `count` match
  double factor = 10.0;         ///< delay / stall / degrade multiplier
  std::uint64_t spill = 0;      ///< tear-shard: run index within the shard
  double keep = 0.5;            ///< tear-shard: fraction of run bytes persisted
  sim::TimeNs period = 0;       ///< flap-daemon: kill/restart cadence
  sim::TimeNs downtime = 0;     ///< flap-daemon: dead span at each period start
  std::int64_t sessions = 0;    ///< storm: sessions burst-admitted at `at`
};

struct FaultPlan {
  std::uint64_t seed = 0x5eedULL;
  std::vector<FaultAction> actions;

  bool empty() const { return actions.empty(); }

  /// Parse the text format above; throws dyntrace::Error (naming `origin`
  /// and the line) on unknown verbs, bad values, or missing selectors.
  static FaultPlan parse(std::string_view text, const std::string& origin = "<plan>");

  /// Load a plan file from disk.
  static FaultPlan load(const std::string& path);

  /// Serialize back to the text format (parse(to_text()) round-trips).
  std::string to_text() const;
};

}  // namespace dyntrace::fault
