#include "dynprof/multi_job.hpp"

#include <algorithm>

#include "control/controller.hpp"
#include "control/overlay.hpp"
#include "fault/injector.hpp"
#include "guide/compiler.hpp"
#include "support/common.hpp"
#include "support/rng.hpp"

namespace dyntrace::dynprof {

namespace {

constexpr std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return SplitMix64(h ^ v).next();
}

/// Nodes a job's placement spans (same arithmetic as Cluster::place_block).
int nodes_for(const machine::MachineSpec& spec, const MultiJobOptions::Job& job) {
  const asci::AppSpec& app = *job.app;
  const int nprocs = app.model == asci::AppSpec::Model::kOpenMP ? 1 : job.params.nprocs;
  const int cpus_per_proc = app.model == asci::AppSpec::Model::kOpenMP
                                ? job.params.nprocs
                                : job.params.threads_per_rank;
  const int units_per_node = (spec.cpus_per_node - job.first_cpu) / cpus_per_proc;
  DT_EXPECT(units_per_node >= 1, "job '", job.name, "': a ", cpus_per_proc,
            "-cpu rank at offset ", job.first_cpu, " does not fit on a ",
            spec.cpus_per_node, "-cpu node");
  return (nprocs + units_per_node - 1) / units_per_node;
}

}  // namespace

MultiJobLaunch::MultiJobLaunch(MultiJobOptions options)
    : options_(std::move(options)),
      telemetry_(std::make_unique<telemetry::Registry>(options_.telemetry_level)),
      scoped_registry_(std::in_place, *telemetry_),
      psim_(std::make_unique<sim::ParallelEngine>(std::max(1, options_.sim_threads))) {
  DT_EXPECT(!options_.jobs.empty(), "a multi-job launch needs at least one job");
  for (auto& job : options_.jobs) {
    DT_EXPECT(job.app != nullptr, "every multi-job entry needs an application");
    if (job.name.empty()) job.name = job.app->name;
  }
  for (std::size_t a = 0; a < options_.jobs.size(); ++a) {
    for (std::size_t b = a + 1; b < options_.jobs.size(); ++b) {
      DT_EXPECT(options_.jobs[a].name != options_.jobs[b].name, "job name '",
                options_.jobs[a].name, "' used twice (give jobs unique names)");
    }
  }

  machine::MachineSpec spec =
      options_.machine.has_value() ? *options_.machine : machine::ibm_power3_sp();
  cluster_ = std::make_unique<machine::Cluster>(*psim_, std::move(spec),
                                                /*noise_seed=*/options_.seed ^ 0x9e3779b9);
  if (options_.fault != nullptr) cluster_->set_fault_injector(options_.fault.get());

  // Register every job's footprint first: tenant counts feed the contention
  // model, and register_job validates spans against the machine.
  int last_app_node = 0;
  for (const auto& job : options_.jobs) {
    const int node_count = nodes_for(cluster_->spec(), job);
    const int cpus_per_proc = job.app->model == asci::AppSpec::Model::kOpenMP
                                  ? job.params.nprocs
                                  : job.params.threads_per_rank;
    const int units_per_node =
        (cluster_->spec().cpus_per_node - job.first_cpu) / cpus_per_proc;
    cluster_->register_job(machine::Cluster::JobSpan{
        job.name, job.first_node, node_count, job.first_cpu,
        units_per_node * cpus_per_proc});
    last_app_node = std::max(last_app_node, job.first_node + node_count - 1);
  }

  // Every Dynamic/Adaptive job gets its own login node above the union
  // span, so tool traffic never contends with another job's CPU slots.
  int next_tool_node = last_app_node + 1;
  std::vector<int> tool_nodes(options_.jobs.size(), -1);
  for (std::size_t j = 0; j < options_.jobs.size(); ++j) {
    const Policy p = options_.jobs[j].policy;
    if (p != Policy::kDynamic && p != Policy::kAdaptive) continue;
    DT_EXPECT(next_tool_node < cluster_->spec().nodes, "machine ",
              cluster_->spec().name, " has no free node for job '",
              options_.jobs[j].name, "'s tool (", cluster_->spec().nodes, " nodes)");
    tool_nodes[j] = next_tool_node++;
  }

  // One partition over the union of all job spans plus the tool nodes --
  // before any Launch binds processes to engines.
  cluster_->partition_nodes(std::min(cluster_->spec().nodes, next_tool_node));

  Rng seed_rng(options_.seed ^ 0x6a6f62);  // "job"
  for (std::size_t j = 0; j < options_.jobs.size(); ++j) {
    const auto& job = options_.jobs[j];
    Launch::Options lo;
    lo.app = job.app;
    lo.params = job.params;
    if (lo.params.seed == 42) lo.params.seed = seed_rng.next_u64();  // per-job default
    if (job.policy == Policy::kAdaptive) {
      lo.params.confsync_interval = options_.confsync_interval;
      lo.params.confsync_statistics = true;
    }
    lo.policy = job.policy;
    lo.first_app_node = job.first_node;
    lo.first_app_cpu = job.first_cpu;
    lo.job_name = job.name;
    lo.trace_spill_bytes = options_.trace_spill_bytes;
    lo.trace_format = options_.trace_format;
    lo.fault = options_.fault;
    lo.shared_engine = psim_.get();
    lo.shared_cluster = cluster_.get();
    lo.shared_telemetry = telemetry_.get();
    launches_.push_back(std::make_unique<Launch>(std::move(lo)));
  }

  for (std::size_t j = 0; j < options_.jobs.size(); ++j) {
    const auto& job = options_.jobs[j];
    Launch& launch = *launches_[j];
    if (job.policy != Policy::kDynamic && job.policy != Policy::kAdaptive) {
      tools_.push_back(nullptr);
      overlays_.push_back(nullptr);
      controllers_.push_back(nullptr);
      continue;
    }

    DynprofTool::Options to;
    to.tool_node = tool_nodes[j];
    to.tool_pid = 100000 + static_cast<int>(j) * 1000;
    std::shared_ptr<control::StatsOverlay> overlay;
    std::unique_ptr<control::BudgetController> controller;
    if (job.policy == Policy::kAdaptive) {
      std::vector<std::string> all_user;
      for (const auto& fn : job.app->symbols->all()) {
        if (!guide::is_runtime_module(fn.module)) all_user.push_back(fn.name);
      }
      to.command_files = {{"all.txt", std::move(all_user)}};
      if (options_.tree_arity > 0) {
        overlay = std::make_shared<control::StatsOverlay>(options_.tree_arity);
        overlay->prepare(launch.process_count());
        overlay->set_job(launch.job_name());
      }
      for (int pid = 0; pid < launch.process_count(); ++pid) {
        if (overlay) launch.vt(pid).set_stats_aggregator(overlay);
        control::install_probe_edit_applier(launch.vt(pid));
      }
      controller = std::make_unique<control::BudgetController>(control::ControllerOptions{});
      controller->attach(launch.vt(0), launch.staged());
    } else {
      to.command_files = {{"subset.txt", job.app->dynamic_list}};
    }
    auto tool = std::make_unique<DynprofTool>(launch, std::move(to));
    std::string script = job.script;
    if (script.empty()) {
      script = job.policy == Policy::kAdaptive ? "insert-file all.txt\nstart\nquit\n"
                                               : "insert-file subset.txt\nstart\nquit\n";
    }
    tool->run_script(parse_script(script));
    tools_.push_back(std::move(tool));
    overlays_.push_back(std::move(overlay));
    controllers_.push_back(std::move(controller));
  }
}

MultiJobLaunch::~MultiJobLaunch() = default;

MultiJobResult MultiJobLaunch::run_to_completion() {
  DT_EXPECT(!ran_, "run_to_completion called twice");
  ran_ = true;
  for (std::size_t j = 0; j < launches_.size(); ++j) {
    if (tools_[j] == nullptr) launches_[j]->start();  // tools start their own job
  }
  psim_->run();

  MultiJobResult result;
  result.combined_digest = 0x6d756c74696a6f62ULL;  // "multijob"
  sim::TimeNs end = 0;
  for (const auto& launch : launches_) {
    end = std::max(end, launch->job().finish_time());
  }
  for (std::size_t j = 0; j < launches_.size(); ++j) {
    Launch& launch = *launches_[j];
    if (tools_[j] != nullptr) {
      DT_ASSERT(tools_[j]->finished(), "job '", launch.job_name(),
                "'s dynprof tool did not finish");
    }
    const Launch::Result r = launch.collect_result();
    MultiJobResult::JobResult jr;
    jr.job = launch.job_name();
    jr.policy = options_.jobs[j].policy;
    jr.nprocs = launch.process_count();
    jr.app_seconds = r.app_seconds;
    jr.total_seconds = r.total_seconds;
    jr.trace_events = r.trace_events;
    if (tools_[j] != nullptr) {
      jr.create_instrument_seconds =
          sim::to_seconds(tools_[j]->create_and_instrument_time());
    }
    jr.trace_digest = launch.trace()->digest();
    jr.stats_digest = vt::stats_digest(launch.vt(0).statistics());
    if (options_.fault != nullptr) {
      jr.lost_ranks = options_.fault->dead_ranks(end, jr.job);
    }
    result.combined_digest = fold(result.combined_digest, jr.trace_digest);
    result.combined_digest = fold(result.combined_digest, jr.stats_digest);
    result.jobs.push_back(std::move(jr));
  }
  return result;
}

}  // namespace dyntrace::dynprof
