#include "dynprof/policy.hpp"

#include "support/common.hpp"

namespace dyntrace::dynprof {

std::vector<int> cpu_counts_for(const asci::AppSpec& app) {
  std::vector<int> counts;
  for (int p = 1; p <= app.max_procs; p *= 2) {
    if (p >= app.min_procs) counts.push_back(p);
  }
  return counts;
}

PolicyResult run_policy(const RunConfig& config) {
  DT_EXPECT(config.app != nullptr, "run_policy needs an application");

  Launch::Options options;
  options.app = config.app;
  options.params.nprocs = config.nprocs;
  options.params.problem_scale = config.problem_scale;
  options.params.seed = config.seed;
  options.policy = config.policy;
  options.machine = config.machine;
  Launch launch(std::move(options));

  PolicyResult result;
  result.policy = config.policy;
  result.nprocs = config.nprocs;

  if (config.policy == Policy::kDynamic) {
    // "The programs were suspended after completing MPI_Init, and then a
    // list of functions was dynamically instrumented using an insert-file
    // command" (§4.2).
    DynprofTool::Options tool_options;
    tool_options.command_files = {{"subset.txt", config.app->dynamic_list}};
    DynprofTool tool(launch, std::move(tool_options));
    tool.run_script(parse_script("insert-file subset.txt\nstart\nquit\n"));
    launch.engine().run();
    DT_ASSERT(tool.finished(), "dynprof tool did not finish");

    const Launch::Result r = launch.collect_result();
    result.app_seconds = r.app_seconds;
    result.total_seconds = r.total_seconds;
    result.trace_events = r.trace_events;
    result.filtered_events = r.filtered_events;
    result.create_instrument_seconds = sim::to_seconds(tool.create_and_instrument_time());
  } else {
    const Launch::Result r = launch.run_to_completion();
    result.app_seconds = r.app_seconds;
    result.total_seconds = r.total_seconds;
    result.trace_events = r.trace_events;
    result.filtered_events = r.filtered_events;
  }
  return result;
}

}  // namespace dyntrace::dynprof
