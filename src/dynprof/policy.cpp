#include "dynprof/policy.hpp"

#include "control/overlay.hpp"
#include "guide/compiler.hpp"
#include "support/common.hpp"

namespace dyntrace::dynprof {

std::vector<int> cpu_counts_for(const asci::AppSpec& app) {
  std::vector<int> counts;
  for (int p = 1; p <= app.max_procs; p *= 2) {
    if (p >= app.min_procs) counts.push_back(p);
  }
  return counts;
}

PolicyResult run_policy(const RunConfig& config) {
  DT_EXPECT(config.app != nullptr, "run_policy needs an application");

  Launch::Options options;
  options.app = config.app;
  options.params.nprocs = config.nprocs;
  options.params.problem_scale = config.problem_scale;
  options.params.seed = config.seed;
  if (config.policy == Policy::kAdaptive) {
    options.params.confsync_interval = config.confsync_interval;
    options.params.confsync_statistics = true;
  }
  options.policy = config.policy;
  options.machine = config.machine;
  options.sim_threads = config.sim_threads;
  options.telemetry_level = config.telemetry_level;
  options.trace_spill_bytes = config.trace_spill_bytes;
  options.trace_format = config.trace_format;
  Launch launch(std::move(options));

  PolicyResult result;
  result.policy = config.policy;
  result.nprocs = config.nprocs;

  if (config.policy == Policy::kAdaptive) {
    // Full dynamic coverage first (every user function gets probes), then
    // the controller earns the budget back at safe points.
    std::vector<std::string> all_user;
    for (const auto& fn : config.app->symbols->all()) {
      if (!guide::is_runtime_module(fn.module)) all_user.push_back(fn.name);
    }
    DynprofTool::Options tool_options;
    tool_options.command_files = {{"all.txt", all_user}};
    DynprofTool tool(launch, std::move(tool_options));

    std::shared_ptr<control::StatsOverlay> overlay;
    if (config.tree_arity > 0) {
      overlay = std::make_shared<control::StatsOverlay>(config.tree_arity);
      overlay->prepare(launch.process_count());
      overlay->set_job(launch.job_name());
    }
    for (int pid = 0; pid < launch.process_count(); ++pid) {
      if (overlay) launch.vt(pid).set_stats_aggregator(overlay);
      control::install_probe_edit_applier(launch.vt(pid));
    }
    control::BudgetController controller(config.controller);
    controller.attach(launch.vt(0), launch.staged());

    tool.run_script(parse_script("insert-file all.txt\nstart\nquit\n"));
    launch.run_engine();
    DT_ASSERT(tool.finished(), "dynprof tool did not finish");

    const Launch::Result r = launch.collect_result();
    result.app_seconds = r.app_seconds;
    result.total_seconds = r.total_seconds;
    result.trace_events = r.trace_events;
    result.filtered_events = r.filtered_events;
    result.create_instrument_seconds = sim::to_seconds(tool.create_and_instrument_time());
    result.confsyncs = launch.vt(0).confsyncs();
    result.decisions = controller.log();
  } else if (config.policy == Policy::kDynamic) {
    // "The programs were suspended after completing MPI_Init, and then a
    // list of functions was dynamically instrumented using an insert-file
    // command" (§4.2).
    DynprofTool::Options tool_options;
    tool_options.command_files = {{"subset.txt", config.app->dynamic_list}};
    DynprofTool tool(launch, std::move(tool_options));
    tool.run_script(parse_script("insert-file subset.txt\nstart\nquit\n"));
    launch.run_engine();
    DT_ASSERT(tool.finished(), "dynprof tool did not finish");

    const Launch::Result r = launch.collect_result();
    result.app_seconds = r.app_seconds;
    result.total_seconds = r.total_seconds;
    result.trace_events = r.trace_events;
    result.filtered_events = r.filtered_events;
    result.create_instrument_seconds = sim::to_seconds(tool.create_and_instrument_time());
  } else {
    const Launch::Result r = launch.run_to_completion();
    result.app_seconds = r.app_seconds;
    result.total_seconds = r.total_seconds;
    result.trace_events = r.trace_events;
    result.filtered_events = r.filtered_events;
  }
  result.trace_digest = launch.trace()->digest();
  result.stats_digest = vt::stats_digest(launch.vt(0).statistics());
  if (config.telemetry_sink) config.telemetry_sink(launch.telemetry_registry());
  return result;
}

}  // namespace dyntrace::dynprof
