// DynprofTool: the dynamic instrumenter (paper §3.3-§3.4).
//
// dynprof spawns the target application through POE (suspended at its first
// instruction), connects to it through DPCL, and immediately installs the
// initialization snippet of Figure 6 at the exit of MPI_Init (MPI apps) or
// VT_init (OpenMP apps):
//
//     MPI_Barrier(); DPCL_callback(); DYNVT_spin(); MPI_Barrier();
//
// Insert/remove commands issued before initialization completes are queued;
// once every process has reported in via the callback, the queued probes
// are installed (the application meanwhile spins), the spin flags are
// released -- with differing per-node delays, which is why the snippet ends
// in a re-synchronizing barrier -- and the application proceeds.
//
// Mid-run insert/remove commands suspend all processes, patch, and resume,
// as described in §3.4.  All internal phases are timed into the "timefile"
// (Figure 9 reports create+instrument).
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dpcl/application.hpp"
#include "dynprof/command.hpp"
#include "dynprof/launch.hpp"
#include "sim/sync.hpp"

namespace dyntrace::dynprof {

class DynprofTool {
 public:
  struct Options {
    /// Node the tool runs on; -1 = first node after the application's.
    int tool_node = -1;
    /// Simulated pid of the tool process.  Multi-job scenarios give each
    /// job's tool a distinct pid so process identities stay unique.
    int tool_pid = 100000;
    /// Use the blocking DPCL suspend (required for OpenMP apps, §3.4).
    bool blocking_suspend = true;
    /// Map command-file names to function lists (stands in for the text
    /// files an interactive user would pass to insert-file/remove-file).
    std::vector<std::pair<std::string, std::vector<std::string>>> command_files;
    /// Attach to an already running application (the extension §3.3 notes
    /// is straightforward): skip POE creation and the Figure-6 init hook;
    /// instead verify VT initialization through target memory, and treat
    /// every insert as a mid-run suspend/patch/resume.  The caller starts
    /// the job itself, and the script must not contain `start`.
    bool attach_to_running = false;
  };

  struct TimeRecord {
    std::string phase;
    sim::TimeNs start = 0;
    sim::TimeNs duration = 0;
  };

  DynprofTool(Launch& launch, Options options);
  ~DynprofTool();
  DynprofTool(const DynprofTool&) = delete;
  DynprofTool& operator=(const DynprofTool&) = delete;

  /// Queue a script for execution and spawn the tool process; call before
  /// Engine::run().  The commands run concurrently with the application.
  void run_script(std::vector<Command> script);

  // --- persistent service mode ----------------------------------------------
  //
  // The one-shot script path above creates, instruments, and quits; a
  // control service instead holds the attachment open for its whole
  // lifetime.  start_service() runs the same create/connect/init protocol
  // (or the attach_to_running preamble), fires attached(), then parks until
  // request_detach() -- all insert/remove traffic in between goes through
  // the programmatic insert_functions()/remove_functions() calls below.

  /// Spawn the persistent tool coroutine; call before Engine::run(),
  /// mutually exclusive with run_script().
  void start_service();

  /// Fires once the application is created, instrumented, and released
  /// into main() (or, in attach mode, once attachment is verified) --
  /// i.e. once programmatic insert/remove calls become valid.
  sim::Trigger& attached() { return *attached_; }

  /// End a start_service() session: detach from the job, leaving active
  /// instrumentation in place (§3.3).  Call after attached() has fired;
  /// safe to call from any coroutine on the tool node's shard.
  void request_detach() { detach_requested_->fire(); }

  /// The internal timings dynprof writes to its timefile.
  const std::vector<TimeRecord>& timefile() const { return timefile_; }
  std::string timefile_text() const;

  /// Figure 9's metric: wall time from tool start until every process was
  /// created, connected, instrumented and released into main().
  sim::TimeNs create_and_instrument_time() const { return create_and_instrument_; }

  bool finished() const { return finished_; }
  dpcl::DpclApplication* application() { return app_.get(); }

  /// Number of functions currently carrying dynamically inserted probes.
  std::size_t instrumented_function_count() const { return instrumented_.size(); }
  const std::vector<std::string>& instrumented_functions() const { return instrumented_; }

  /// One node's drop down the instrumentation ladder (fault-tolerant runs
  /// only): a node abandoned mid-install keeps whatever probes already went
  /// in -- Dynamic -> Subset -- and a node lost before anything was
  /// installed runs uninstrumented, Dynamic -> None.  Each drop is also a
  /// "degrade" entry in the injector's run report.
  struct Degradation {
    sim::TimeNs time = 0;
    int node = -1;
    std::vector<int> ranks;  ///< pids on the node, ascending
    Policy from = Policy::kDynamic;
    Policy to = Policy::kNone;
  };
  const std::vector<Degradation>& degradations() const { return degradations_; }

  // --- programmatic control (used by controllers such as HybridController) --
  //
  // Valid once the application is running (after `start`, or in attach
  // mode); each call suspends all processes, patches, and resumes.

  sim::Coro<void> insert_functions(const std::vector<std::string>& names);
  sim::Coro<void> remove_functions(const std::vector<std::string>& names);

  proc::SimThread& tool_thread() { return tool_process_->main_thread(); }

 private:
  sim::Coro<void> tool_main(std::vector<Command> script);
  sim::Coro<void> service_main();
  /// The attach_to_running preamble: connect, verify VT initialization
  /// through target memory, mark the session ready for mid-run patching.
  sim::Coro<void> attach_preamble(proc::SimThread& tool);
  sim::Coro<void> create_and_connect(proc::SimThread& tool);
  sim::Coro<void> install_init_hook(proc::SimThread& tool);
  sim::Coro<void> await_init_and_release(proc::SimThread& tool);
  sim::Coro<void> do_insert(proc::SimThread& tool, const std::vector<std::string>& names);
  sim::Coro<void> do_remove(proc::SimThread& tool, const std::vector<std::string>& names);
  std::vector<std::string> resolve_file(const std::string& filename) const;
  image::FunctionId resolve(const std::string& name) const;
  /// Record ladder drops for nodes newly abandoned by the dpcl layer;
  /// `had_probes` decides Subset vs None.  No-op outside fault mode.
  void note_degraded_nodes(sim::TimeNs now, bool had_probes);

  void begin_phase(const std::string& name);
  void end_phase();

  Launch& launch_;
  Options options_;
  int tool_node_ = 0;

  std::unique_ptr<proc::SimProcess> tool_process_;
  std::vector<std::unique_ptr<dpcl::SuperDaemon>> super_daemons_;
  std::unique_ptr<dpcl::DpclApplication> app_;
  /// Service-mode lifecycle (constructed after tool_process_, whose engine
  /// they live on).
  std::optional<sim::Trigger> attached_;
  std::optional<sim::Trigger> detach_requested_;

  bool started_app_ = false;
  bool init_released_ = false;
  bool finished_ = false;
  std::vector<std::string> pending_inserts_;
  std::vector<std::string> instrumented_;
  std::set<int> degraded_nodes_;
  std::set<int> quarantine_dropped_;  ///< nodes with an active (reversible) quarantine drop
  std::vector<Degradation> degradations_;

  std::vector<TimeRecord> timefile_;
  sim::TimeNs phase_start_ = 0;
  std::string phase_name_;
  sim::TimeNs tool_start_time_ = 0;
  sim::TimeNs create_and_instrument_ = 0;
};

}  // namespace dyntrace::dynprof
