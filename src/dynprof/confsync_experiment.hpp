// The §5 dynamic-control experiments behind Figure 8: measure VT_confsync
// latency on a P-rank MPI job, averaged over repetitions, in three
// variants: (1) no configuration changes, (2) with changes staged at rank
// 0's breakpoint, (3) with runtime statistics gathered and written.
#pragma once

#include <cstdint>

#include "machine/spec.hpp"

namespace dyntrace::dynprof {

struct ConfsyncExperimentConfig {
  int nprocs = 2;
  machine::MachineSpec machine;  ///< set from ibm_power3_sp()/ia32_linux_cluster()
  int repetitions = 16;          ///< "each data point is the average over 16 runs"
  bool with_changes = false;     ///< experiment 2: stage a filter update each sync
  bool write_statistics = false; ///< experiment 3: gather + dump per-function stats
  int symbol_count = 203;        ///< registered functions (affects statistics size)
  /// Statistics reduction shape: 0 = the paper's linear gather-to-rank-0;
  /// k >= 2 = the control plane's k-ary aggregation overlay.
  int tree_arity = 0;
  /// Simulation worker threads (conservative parallel engine shards);
  /// results are bit-identical for every value.
  int sim_threads = 1;
  std::uint64_t seed = 42;
};

struct ConfsyncExperimentResult {
  double mean_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;
};

ConfsyncExperimentResult run_confsync_experiment(const ConfsyncExperimentConfig& config);

}  // namespace dyntrace::dynprof
