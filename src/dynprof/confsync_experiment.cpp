#include "dynprof/confsync_experiment.hpp"

#include <algorithm>

#include "control/overlay.hpp"
#include "sim/parallel_engine.hpp"
#include "mpi/world.hpp"
#include "proc/job.hpp"
#include "sim/stats.hpp"
#include "support/common.hpp"
#include "support/strings.hpp"
#include "vt/vtlib.hpp"

namespace dyntrace::dynprof {

ConfsyncExperimentResult run_confsync_experiment(const ConfsyncExperimentConfig& config) {
  DT_EXPECT(config.nprocs >= 1, "need at least one process");
  DT_EXPECT(config.repetitions >= 1, "need at least one repetition");

  sim::ParallelEngine psim(std::max(1, config.sim_threads));
  machine::Cluster cluster(psim, config.machine, config.seed ^ 0xc0ff5ee);
  mpi::World world(cluster);
  proc::ParallelJob job(cluster, "confsync-experiment");
  auto store = std::make_shared<vt::TraceStore>();
  auto staged = std::make_shared<vt::StagedUpdate>();

  auto symbols = std::make_shared<image::SymbolTable>();
  symbols->add("main");
  for (int i = 1; i < config.symbol_count; ++i) {
    symbols->add(str::format("experiment_fn_%03d", i));
  }

  std::shared_ptr<control::StatsOverlay> overlay;
  if (config.tree_arity > 0) {
    overlay = std::make_shared<control::StatsOverlay>(config.tree_arity);
    overlay->prepare(config.nprocs);
  }

  std::vector<std::unique_ptr<vt::VtLib>> vts;
  const auto placement = cluster.place_block(config.nprocs, 1);
  for (int pid = 0; pid < config.nprocs; ++pid) {
    proc::SimProcess& process =
        job.add_process(image::ProgramImage(symbols), placement[pid].node, placement[pid].cpu);
    mpi::Rank& rank = world.add_rank(process);
    auto vt = std::make_unique<vt::VtLib>(process, store, vt::VtLib::Options{});
    vt->link();
    vt->set_rank(&rank);
    vt->set_staged_update(staged);
    if (overlay) vt->set_stats_aggregator(overlay);
    vts.push_back(std::move(vt));
  }

  if (config.with_changes) {
    // The monitoring tool stages an alternating reconfiguration at each
    // breakpoint (scripted: no user-interaction delay).
    vts[0]->set_break_handler([staged](vt::VtLib&) -> sim::TimeNs {
      const bool off = (staged->version % 2) == 0;
      staged->program = {{!off, "experiment_fn_0*"}, {off, "experiment_fn_1*"}};
      ++staged->version;
      return 0;
    });
  }

  sim::Accumulator latency;
  for (int pid = 0; pid < config.nprocs; ++pid) {
    job.set_main(pid, [&, pid](proc::SimThread& thread) -> sim::Coro<void> {
      mpi::Rank& rank = world.rank(pid);
      vt::VtLib& vt = *vts[pid];
      co_await rank.init(thread);
      co_await vt.vt_init(thread);
      if (config.write_statistics) {
        // Touch every symbol once so the per-function tables are fully
        // populated: the legacy path always ships the whole table; the
        // overlay ships records with activity.  Same record count for both
        // keeps the comparison honest.
        for (image::FunctionId fn = 0; fn < symbols->size(); ++fn) {
          co_await vt.vt_begin(thread, fn);
          co_await vt.vt_end(thread, fn);
        }
      }
      for (int rep = 0; rep < config.repetitions; ++rep) {
        co_await rank.barrier(thread);  // align ranks before timing
        const sim::TimeNs begin = thread.engine().now();
        co_await vt.confsync(thread, config.write_statistics);
        if (pid == 0) latency.add(sim::to_seconds(thread.engine().now() - begin));
      }
      co_await rank.finalize(thread);
    });
  }

  job.start();
  psim.run();

  ConfsyncExperimentResult result;
  result.mean_seconds = latency.mean();
  result.min_seconds = latency.min();
  result.max_seconds = latency.max();
  return result;
}

}  // namespace dyntrace::dynprof
