// The dynprof command language (paper Table 1).
//
//   help (h)          display a help message
//   insert (i)        insert instrumentation into one or more functions
//   remove (r)        remove instrumentation from one or more functions
//   insert-file (if)  insert into all functions listed in the given file(s)
//   remove-file (rf)  remove from all functions listed in the given file(s)
//   start (s)         start execution of the target application
//   quit (q)          detach the instrumenter from the application
//   wait (w)          wait before executing the next command
//
// Scripts are sequences of commands, one per line ('#' comments allowed) --
// the mechanism the paper used to run experiments through batch queues.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace dyntrace::dynprof {

enum class CommandKind : int {
  kHelp,
  kInsert,
  kRemove,
  kInsertFile,
  kRemoveFile,
  kStart,
  kQuit,
  kWait,
};

struct CommandInfo {
  CommandKind kind;
  const char* name;
  const char* shortcut;
  const char* description;
};

/// Table 1, generated from the implementation (bench/table1_commands).
const std::vector<CommandInfo>& command_table();

struct Command {
  CommandKind kind = CommandKind::kHelp;
  std::vector<std::string> args;

  /// For kWait: seconds to wait (parsed from args[0], default 1).
  double wait_seconds() const;
};

/// Parse one command line; empty/comment lines give nullopt; throws
/// dyntrace::Error for unknown commands or bad arguments.
std::optional<Command> parse_command(const std::string& line);

/// Parse a whole script.
std::vector<Command> parse_script(const std::string& text);

/// Render the help message (the `help` command's output).
std::string help_text();

}  // namespace dyntrace::dynprof
