// The evaluation harness: run one application under one instrumentation
// policy (paper Table 3) and measure what Figures 7 and 9 plot.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "control/controller.hpp"
#include "dynprof/launch.hpp"
#include "dynprof/tool.hpp"

namespace dyntrace::dynprof {

struct RunConfig {
  const asci::AppSpec* app = nullptr;
  Policy policy = Policy::kNone;
  int nprocs = 1;
  double problem_scale = 1.0;
  std::uint64_t seed = 42;
  std::optional<machine::MachineSpec> machine;  ///< default IBM Power3 SP
  /// Simulation worker threads (see Launch::Options::sim_threads).  Results
  /// are bit-identical for every value.
  int sim_threads = 1;
  /// Self-telemetry level for the run (DESIGN.md §12).  Telemetry never
  /// perturbs simulated results -- digests are identical at every level.
  telemetry::Level telemetry_level = telemetry::default_level();
  /// Trace-shard spill budget and run encoding (see Launch::Options).  The
  /// format changes bytes on disk only -- digests, statistics, and decision
  /// logs are bit-identical between v1 and v2.
  std::size_t trace_spill_bytes = 0;
  vt::TraceFormat trace_format = vt::TraceFormat::kV2;
  /// Capture the run's telemetry artifacts after completion (set by the CLI
  /// when --telemetry-stats/--telemetry-trace ask for files).
  std::function<void(const telemetry::Registry&)> telemetry_sink;

  // --- Policy::kAdaptive only ----------------------------------------------
  /// Budget controller configuration (see control::ControllerOptions).
  control::ControllerOptions controller;
  /// Safe-point cadence fed to AppParams::confsync_interval.
  int confsync_interval = 36;
  /// Statistics-reduction overlay arity; 0 = legacy linear gather.
  int tree_arity = 4;
};

struct PolicyResult {
  Policy policy = Policy::kNone;
  int nprocs = 1;
  /// Post-initialization main-computation time: the Figure 7 metric
  /// ("program times reported do not include the time used to create and
  /// insert the instrumentation", §4.2).
  double app_seconds = 0;
  double total_seconds = 0;
  /// dynprof create+instrument time (Figure 9); 0 for static policies.
  double create_instrument_seconds = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t filtered_events = 0;
  /// Safe points the job executed (Adaptive only; 0 otherwise).
  std::uint64_t confsyncs = 0;
  /// FNV-1a fingerprint of the full merged trace (and of rank 0's final
  /// statistics table): the bit-identity witness the parallel-engine
  /// determinism tests and the bench --sim-threads comparison check.
  std::uint64_t trace_digest = 0;
  std::uint64_t stats_digest = 0;
  /// The controller's decision trail (Adaptive only; empty otherwise).
  control::DecisionLog decisions;
};

/// Run one (app, policy, nprocs) cell of Figure 7.
PolicyResult run_policy(const RunConfig& config);

/// The processor counts evaluated for an app in the paper (§4.2): MPI apps
/// 1..64 (Sweep3d from 2), Umt98 1..8.
std::vector<int> cpu_counts_for(const asci::AppSpec& app);

}  // namespace dyntrace::dynprof
