#include "dynprof/launch.hpp"

#include <algorithm>

#include "fault/injector.hpp"
#include "guide/compiler.hpp"
#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::dynprof {

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kFull: return "Full";
    case Policy::kFullOff: return "Full-Off";
    case Policy::kSubset: return "Subset";
    case Policy::kNone: return "None";
    case Policy::kDynamic: return "Dynamic";
    case Policy::kAdaptive: return "Adaptive";
  }
  return "?";
}

Policy policy_from_string(const std::string& name) {
  for (const auto& info : policy_table()) {
    if (str::iequals(name, info.name)) return info.policy;
  }
  fail("unknown policy '", name, "' (Full, Full-Off, Subset, None, Dynamic, Adaptive)");
}

const std::vector<PolicyInfo>& policy_table() {
  static const std::vector<PolicyInfo> table = {
      {Policy::kFull, "Full", "All functions are statically instrumented."},
      {Policy::kFullOff, "Full-Off",
       "All functions are statically instrumented but disabled using the configuration "
       "file."},
      {Policy::kSubset, "Subset",
       "All functions are statically instrumented with only an important subset left "
       "active."},
      {Policy::kNone, "None", "No subroutine instrumentation is inserted."},
      {Policy::kDynamic, "Dynamic",
       "The dynprof tool is used to dynamically instrument the same functions used by "
       "Subset."},
      {Policy::kAdaptive, "Adaptive",
       "All functions are dynamically instrumented and an overhead-budget controller "
       "prunes the set at runtime safe points."},
  };
  return table;
}

std::vector<Policy> policies_for(const asci::AppSpec& app) {
  if (app.subset.empty()) {
    // Sweep3d: "we decided that a Subset version was unnecessary" (§4.3).
    return {Policy::kFull, Policy::kFullOff, Policy::kNone, Policy::kDynamic};
  }
  return {Policy::kFull, Policy::kFullOff, Policy::kSubset, Policy::kNone, Policy::kDynamic};
}

Launch::Launch(Options options)
    : options_(std::move(options)),
      owned_telemetry_(options_.shared_telemetry != nullptr
                           ? nullptr
                           : std::make_unique<telemetry::Registry>(options_.telemetry_level)),
      telemetry_(options_.shared_telemetry != nullptr ? options_.shared_telemetry
                                                      : owned_telemetry_.get()),
      owned_psim_(options_.shared_engine != nullptr
                      ? nullptr
                      : std::make_unique<sim::ParallelEngine>(
                            std::max(1, options_.sim_threads))),
      psim_(options_.shared_engine != nullptr ? options_.shared_engine
                                              : owned_psim_.get()),
      init_trigger_(psim_->shard(0)) {
  DT_EXPECT(options_.app != nullptr, "Launch needs an application");
  // Installing the registry is the owning Launch's job; a shared-substrate
  // Launch expects the scenario owner to have installed the shared one.
  if (owned_telemetry_ != nullptr) scoped_registry_.emplace(*telemetry_);
  const asci::AppSpec& app = *options_.app;
  const asci::AppParams& params = options_.params;
  if (options_.job_name.empty()) options_.job_name = app.name;
  DT_EXPECT(params.nprocs >= app.min_procs, app.name, " does not run on ", params.nprocs,
            " processor(s) (minimum ", app.min_procs, ")");
  DT_EXPECT(params.nprocs <= app.max_procs, app.name, " was evaluated up to ", app.max_procs,
            " processors; got ", params.nprocs);

  if (options_.shared_cluster != nullptr) {
    DT_EXPECT(options_.shared_engine != nullptr,
              "a shared cluster requires its shared engine");
    cluster_ = options_.shared_cluster;
  } else {
    DT_EXPECT(options_.shared_engine == nullptr,
              "a shared engine requires a shared cluster");
    machine::MachineSpec spec =
        options_.machine.has_value() ? *options_.machine : machine::ibm_power3_sp();
    owned_cluster_ = std::make_unique<machine::Cluster>(
        *psim_, std::move(spec), /*noise_seed=*/params.seed ^ 0x9e3779b9);
    cluster_ = owned_cluster_.get();
  }
  vt::TraceStore::Options store_options;
  store_options.spill_budget_bytes = options_.trace_spill_bytes;
  store_options.spill_dir = options_.trace_spill_dir;
  store_options.format = options_.trace_format;
  if (options_.fault != nullptr) {
    // Every layer gates on the cluster's injector pointer; setting it is
    // what switches the stack into fault-tolerant mode.
    cluster_->set_fault_injector(options_.fault.get());
    fault::FaultInjector* injector = options_.fault.get();
    store_options.spill_fault = [injector, job = options_.job_name](
                                    std::int32_t pid, std::uint64_t run_index,
                                    std::size_t bytes) {
      return injector->spill_bytes(pid, run_index, bytes, job);
    };
  }
  store_ = std::make_shared<vt::TraceStore>(std::move(store_options));
  staged_ = std::make_shared<vt::StagedUpdate>();
  job_ = std::make_unique<proc::ParallelJob>(*cluster_, options_.job_name);

  const bool is_mpi = app.model != asci::AppSpec::Model::kOpenMP;
  const bool uses_omp = app.model != asci::AppSpec::Model::kMpi;
  if (is_mpi) world_ = std::make_unique<mpi::World>(*cluster_);
  DT_EXPECT(params.threads_per_rank >= 1, "threads_per_rank must be >= 1");
  DT_EXPECT(app.model == asci::AppSpec::Model::kMixed || params.threads_per_rank == 1,
            app.name, " is not a mixed-mode application");

  // Static instrumentation per policy (the "Guide compile" step).
  guide::CompileOptions compile_options;
  compile_options.instrument_subroutines = options_.policy == Policy::kFull ||
                                           options_.policy == Policy::kFullOff ||
                                           options_.policy == Policy::kSubset;
  const image::ProgramImage template_image = guide::compile(app.symbols, compile_options);

  // The VT configuration file per policy.
  vt::VtLib::Options vt_options;
  vt_options.buffer_records = options_.vt_buffer_records;
  if (options_.policy == Policy::kFullOff) {
    vt_options.config_filter = guide::full_off_filter();
  } else if (options_.policy == Policy::kSubset) {
    DT_EXPECT(!app.subset.empty(), app.name, " has no Subset policy");
    vt_options.config_filter = guide::subset_filter(app.subset);
  }

  // Placement: MPI ranks fill nodes CPU by CPU; an OpenMP app is a single
  // process whose team occupies one node; a mixed app's ranks each occupy
  // threads_per_rank consecutive CPUs.
  const int nprocs = is_mpi ? params.nprocs : 1;
  const int cpus_per_proc = app.model == asci::AppSpec::Model::kOpenMP
                                ? params.nprocs
                                : params.threads_per_rank;
  const auto placement =
      cluster_->place_block(nprocs, cpus_per_proc, options_.first_app_cpu);

  // Topology-aware partition over the span placement actually uses (app
  // nodes plus the tool's login node directly above them): contiguous node
  // blocks per shard keep neighbour-heavy rank traffic shard-local.  Must
  // happen before add_process binds each process to its home engine.  A
  // shared cluster was partitioned by its owner over the union of all job
  // spans; re-partitioning here would invalidate already-bound processes.
  if (options_.shared_cluster == nullptr) {
    const int last_app_node = options_.first_app_node + placement.back().node;
    cluster_->partition_nodes(
        std::min(cluster_->spec().nodes, last_app_node + 2));
  }

  Rng seed_rng(params.seed);
  Rng clock_rng(params.seed ^ 0xc10c);
  for (int pid = 0; pid < nprocs; ++pid) {
    proc::SimProcess& process =
        job_->add_process(template_image, placement[pid].node + options_.first_app_node,
                          placement[pid].cpu);

    vt::VtLib::Options process_vt_options = vt_options;
    if (options_.clock_skew_stddev > 0 && pid > 0) {
      process_vt_options.clock_offset = static_cast<sim::TimeNs>(
          clock_rng.normal(0, static_cast<double>(options_.clock_skew_stddev)));
    }
    auto vt = std::make_unique<vt::VtLib>(process, store_, process_vt_options);
    vt->link();
    vt->set_staged_update(staged_);

    mpi::Rank* rank = nullptr;
    if (is_mpi) {
      rank = &world_->add_rank(process);
      vt->set_rank(rank);
      auto interpose = std::make_unique<vt::VtMpiInterpose>(*vt);
      rank->set_interpose(interpose.get());
      interposes_.push_back(std::move(interpose));
    }

    omp::OmpRuntime* omp = nullptr;
    if (uses_omp) {
      const int team = app.model == asci::AppSpec::Model::kOpenMP ? params.nprocs
                                                                  : params.threads_per_rank;
      omp_runtimes_.push_back(std::make_unique<omp::OmpRuntime>(process, team));
      omp_listeners_.push_back(std::make_unique<vt::VtOmpListener>(*vt));
      omp_runtimes_.back()->set_listener(omp_listeners_.back().get());
      omp = omp_runtimes_.back().get();
    }

    contexts_.push_back(std::make_unique<asci::AppContext>(
        app, params, process, rank, omp, vt.get(), seed_rng.fork(pid)));
    vts_.push_back(std::move(vt));

    job_->set_main(pid, [this, pid](proc::SimThread& thread) -> sim::Coro<void> {
      co_await rank_main(pid, thread);
    });
  }
}

Launch::~Launch() = default;

sim::Coro<void> Launch::rank_main(int pid, proc::SimThread& thread) {
  const asci::AppSpec& app = *options_.app;
  asci::AppContext& ctx = context(pid);
  // Mixed-mode ranks initialise through MPI_Init like pure MPI ones (the
  // OpenMP side needs no cross-process synchronisation for VT init).
  const bool is_mpi = app.model != asci::AppSpec::Model::kOpenMP;

  co_await ctx.call(thread, "main", [&](proc::SimThread& t) -> sim::Coro<void> {
    if (is_mpi) {
      // The VT library initialises itself inside MPI_Init through the MPI
      // wrapper interface (§3.4) -- and dynprof's initialization snippet
      // (Figure 6) runs at this function's *exit* probe point.
      co_await ctx.call(t, "MPI_Init", [&](proc::SimThread& t2) -> sim::Coro<void> {
        co_await world_->rank(pid).init(t2);
        co_await vt(pid).vt_init(t2);
      });
    } else {
      // OpenMP: Guide inserts VT_init at the start of main; dynprof's
      // callback+spin snippet runs at VT_init's exit (§3.4).
      co_await ctx.call(t, "VT_init", [&](proc::SimThread& t2) -> sim::Coro<void> {
        co_await vt(pid).vt_init(t2);
      });
    }
    {
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(init_mutex_);
        init_latest_ = std::max(init_latest_, thread.engine().now());
        last = ++init_done_count_ == process_count();
        if (last) init_complete_ = init_latest_;  // stays -1 until everyone is done
      }
      // Cross-shard fire is safe: only sequential-mode controllers await
      // this trigger (Engine::post would assert otherwise).
      if (last) init_trigger_.fire();
    }

    co_await app.body(ctx, t);

    if (is_mpi) {
      co_await ctx.call(t, "MPI_Finalize", [&](proc::SimThread& t2) -> sim::Coro<void> {
        co_await vt(pid).vt_finalize(t2);
        co_await world_->rank(pid).finalize(t2);
      });
    } else {
      co_await vt(pid).vt_finalize(t);
    }
  });
}

Launch::Result Launch::collect_result() const {
  Result result;
  result.total_seconds = sim::to_seconds(job_->finish_time() - job_->start_time());
  const sim::TimeNs t0 = init_complete_ >= 0 ? init_complete_ : job_->start_time();
  result.app_seconds = sim::to_seconds(job_->finish_time() - t0);
  for (const auto& vt : vts_) {
    result.trace_events += vt->virtual_events();
    result.filtered_events += vt->events_filtered();
  }
  return result;
}

Launch::Result Launch::run_to_completion() {
  start();
  run_engine();
  return collect_result();
}

}  // namespace dyntrace::dynprof
