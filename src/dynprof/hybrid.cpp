#include "dynprof/hybrid.hpp"

#include <map>

#include "guide/compiler.hpp"
#include "support/common.hpp"
#include "support/log.hpp"

namespace dyntrace::dynprof {

HybridController::HybridController(Launch& launch, DynprofTool& tool, Options options)
    : launch_(launch), tool_(tool), options_(options) {
  DT_EXPECT(options.top_k >= 1, "hybrid controller needs top_k >= 1");
  DT_EXPECT(options.sample_window > 0 && options.detail_window > 0,
            "hybrid windows must be positive");
}

void HybridController::start() {
  // The controller samples every process and awaits the init trigger from
  // one coroutine, so it needs the whole cluster on a single shard.
  DT_EXPECT(launch_.parallel_engine().shard_count() == 1,
            "HybridController requires sim_threads == 1");
  launch_.engine().spawn(run(), "hybrid.controller");
}

sim::Coro<void> HybridController::run() {
  sim::Engine& engine = launch_.engine();

  // Phase 0: wait until every rank is initialized and released.
  co_await launch_.init_complete_trigger().wait();

  // Phase 1: sample every process over the window.
  sampling::Sampler::Options sampler_options;
  sampler_options.interval = options_.sampling_interval;
  sampler_options.per_sample_cost = options_.per_sample_cost;
  for (const auto& process : launch_.job().processes()) {
    samplers_.push_back(std::make_unique<sampling::Sampler>(*process, sampler_options));
    samplers_.back()->start();
  }
  co_await engine.sleep(options_.sample_window);
  for (auto& sampler : samplers_) {
    sampler->stop();
    report_.total_samples += sampler->total_samples();
  }

  // Phase 2: merge histograms and pick the top-k user functions.
  std::map<image::FunctionId, std::uint64_t> merged;
  for (const auto& sampler : samplers_) {
    for (const auto& [fn, hits] : sampler->histogram()) {
      if (fn != image::kInvalidFunction) merged[fn] += hits;
    }
  }
  const image::SymbolTable& symbols = *launch_.options().app->symbols;
  std::vector<std::pair<std::uint64_t, image::FunctionId>> ranked;
  for (const auto& [fn, hits] : merged) {
    const auto& info = symbols.at(fn);
    if (info.name == "main" || guide::is_runtime_module(info.module)) continue;
    ranked.emplace_back(hits, fn);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (std::size_t i = 0; i < ranked.size() && i < options_.top_k; ++i) {
    report_.selected.push_back(symbols.at(ranked[i].second).name);
  }

  if (report_.selected.empty() || !app_still_running()) {
    log::info("hybrid", "nothing to instrument (", report_.total_samples, " samples, app ",
              app_still_running() ? "running" : "finished", ")");
    finished_ = true;
    co_return;
  }

  // Phase 3: detailed dynamic instrumentation of the selected functions.
  co_await tool_.insert_functions(report_.selected);
  report_.instrumented = true;
  report_.instrumented_from = engine.now();

  co_await engine.sleep(options_.detail_window);

  // Phase 4: remove the probes; the detailed snapshot stays in the trace.
  report_.instrumented_to = engine.now();
  if (options_.remove_after_window && app_still_running()) {
    co_await tool_.remove_functions(report_.selected);
    report_.removed = true;
  }
  finished_ = true;
}

}  // namespace dyntrace::dynprof
