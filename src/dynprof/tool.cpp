#include "dynprof/tool.hpp"

#include <algorithm>

#include "fault/injector.hpp"
#include "image/snippet.hpp"
#include "support/common.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace dyntrace::dynprof {

namespace {

constexpr const char* kSpinFlag = "dynvt_spin";
constexpr const char* kInitCallbackTag = "vt-initialized";

}  // namespace

DynprofTool::DynprofTool(Launch& launch, Options options)
    : launch_(launch), options_(std::move(options)) {
  machine::Cluster& cluster = launch_.cluster();

  // Place the tool on the first node after the application's (a "login
  // node"), clamped to the machine.
  int max_app_node = 0;
  for (const auto& process : launch_.job().processes()) {
    max_app_node = std::max(max_app_node, process->node());
  }
  tool_node_ = options_.tool_node >= 0 ? options_.tool_node
                                       : std::min(max_app_node + 1, cluster.spec().nodes - 1);

  // The tool is itself a process on the cluster (its compute and message
  // times are charged like any other program's).
  auto tool_symbols = std::make_shared<image::SymbolTable>();
  tool_symbols->add("dynprof", "dynprof.cpp");
  tool_process_ = std::make_unique<proc::SimProcess>(
      cluster, options_.tool_pid, tool_node_, /*first_cpu=*/0,
      image::ProgramImage(std::move(tool_symbols)));

  // DPCL super daemons run on every node that could host a target.
  for (int node = 0; node < cluster.spec().nodes; ++node) {
    super_daemons_.push_back(std::make_unique<dpcl::SuperDaemon>(cluster, node));
  }

  attached_.emplace(tool_process_->engine());
  detach_requested_.emplace(tool_process_->engine());
}

DynprofTool::~DynprofTool() = default;

void DynprofTool::begin_phase(const std::string& name) {
  phase_name_ = name;
  phase_start_ = tool_process_->engine().now();
}

void DynprofTool::end_phase() {
  timefile_.push_back(
      TimeRecord{phase_name_, phase_start_, tool_process_->engine().now() - phase_start_});
}

std::string DynprofTool::timefile_text() const {
  std::string out = "# dynprof internal timings\n";
  for (const auto& rec : timefile_) {
    out += str::format("%-24s start=%.6fs duration=%.6fs\n", rec.phase.c_str(),
                       sim::to_seconds(rec.start), sim::to_seconds(rec.duration));
  }
  return out;
}

void DynprofTool::run_script(std::vector<Command> script) {
  // The tool coroutine lives on its own process's home shard.
  tool_process_->engine().spawn(tool_main(std::move(script)), "dynprof.tool");
}

void DynprofTool::start_service() {
  tool_process_->engine().spawn(service_main(), "dynprof.service");
}

image::FunctionId DynprofTool::resolve(const std::string& name) const {
  const image::FunctionInfo* info = launch_.options().app->symbols->find(name);
  DT_EXPECT(info != nullptr, "dynprof: unknown function '", name, "'");
  return info->id;
}

std::vector<std::string> DynprofTool::resolve_file(const std::string& filename) const {
  for (const auto& [name, functions] : options_.command_files) {
    if (name == filename) return functions;
  }
  fail("dynprof: unknown command file '", filename, "'");
}

sim::Coro<void> DynprofTool::create_and_connect(proc::SimThread& tool) {
  machine::Cluster& cluster = launch_.cluster();
  const machine::CostModel& costs = cluster.spec().costs;

  // "dynprof makes a call to initiate the application using poe" (§3.3):
  // the job is created with every process suspended at its first
  // instruction.
  begin_phase("poe-create");
  co_await tool.compute(costs.poe_spawn_base +
                        costs.poe_spawn_per_proc *
                            static_cast<sim::TimeNs>(launch_.job().size()));
  end_phase();

  begin_phase("dpcl-connect");
  std::vector<dpcl::SuperDaemon*> daemons;
  daemons.reserve(super_daemons_.size());
  for (auto& sd : super_daemons_) {
    sd->start(&tool);
    daemons.push_back(sd.get());
  }
  app_ = std::make_unique<dpcl::DpclApplication>(cluster, launch_.job(), tool_node_,
                                                 std::move(daemons));
  co_await app_->connect(tool);
  end_phase();
}

sim::Coro<void> DynprofTool::install_init_hook(proc::SimThread& tool) {
  // Figure 6: inserted "immediately upon loading the application".
  begin_phase("install-init-hook");
  const asci::AppSpec& app = *launch_.options().app;
  // Mixed-mode apps synchronise through MPI_Init like pure MPI ones.
  const bool is_mpi = app.model != asci::AppSpec::Model::kOpenMP;
  image::SnippetPtr snippet;
  image::FunctionId hook_fn;
  if (is_mpi) {
    hook_fn = resolve("MPI_Init");
    snippet = image::snippet::seq({
        image::snippet::call("MPI_Barrier"),
        image::snippet::callback(kInitCallbackTag),
        image::snippet::spin_until(kSpinFlag, 1),
        image::snippet::call("MPI_Barrier"),
    });
  } else {
    // OpenMP: VT_init runs in a guaranteed single-threaded region, so no
    // barriers are needed (§3.4).
    hook_fn = resolve("VT_init");
    snippet = image::snippet::seq({
        image::snippet::callback(kInitCallbackTag),
        image::snippet::spin_until(kSpinFlag, 1),
    });
  }
  co_await app_->install_probe(tool, hook_fn, image::ProbeWhere::kExit, std::move(snippet),
                               /*activate=*/true, /*blocking=*/true);
  end_phase();
}

void DynprofTool::note_degraded_nodes(sim::TimeNs now, bool had_probes) {
  fault::FaultInjector* injector = launch_.fault_injector();
  if (injector == nullptr || app_ == nullptr) return;
  auto ranks_on = [this](int node) {
    std::vector<int> ranks;
    for (const auto& process : launch_.job().processes()) {
      if (process->node() == node) ranks.push_back(process->pid());
    }
    std::sort(ranks.begin(), ranks.end());
    return ranks;
  };
  for (const int node : app_->lost_nodes()) {
    if (!degraded_nodes_.insert(node).second) continue;
    Degradation drop;
    drop.time = now;
    drop.node = node;
    drop.ranks = ranks_on(node);
    drop.from = Policy::kDynamic;
    drop.to = had_probes ? Policy::kSubset : Policy::kNone;
    injector->report().add(now, "degrade",
                           str::format("node=%d %s->%s", node, to_string(drop.from),
                                       to_string(drop.to)),
                           drop.ranks);
    degradations_.push_back(std::move(drop));
  }
  // Quarantined (breaker-open) nodes take the same ladder drop, but
  // reversibly: a half-open probe that re-admits the node lifts it, and a
  // relapse records a fresh drop.  Lost nodes take precedence.
  const dpcl::HealthTracker* health = app_->health();
  if (health == nullptr) return;
  for (auto it = quarantine_dropped_.begin(); it != quarantine_dropped_.end();) {
    const int node = *it;
    if (health->state(node) == dpcl::BreakerState::kClosed &&
        app_->lost_nodes().count(node) == 0) {
      injector->report().add(now, "restore",
                             str::format("node=%d quarantine lifted", node), ranks_on(node));
      it = quarantine_dropped_.erase(it);
    } else {
      ++it;
    }
  }
  for (const int node : app_->quarantined_last_broadcast()) {
    if (degraded_nodes_.count(node) != 0) continue;
    if (!quarantine_dropped_.insert(node).second) continue;
    Degradation drop;
    drop.time = now;
    drop.node = node;
    drop.ranks = ranks_on(node);
    drop.from = Policy::kDynamic;
    drop.to = had_probes ? Policy::kSubset : Policy::kNone;
    injector->report().add(now, "degrade",
                           str::format("node=%d %s->%s (quarantine)", node,
                                       to_string(drop.from), to_string(drop.to)),
                           drop.ranks);
    degradations_.push_back(std::move(drop));
  }
}

sim::Coro<void> DynprofTool::await_init_and_release(proc::SimThread& tool) {
  // Every process reports in once it has passed MPI_Init + VT init (the
  // first barrier of Figure 6 aligns them before the callbacks fire).
  begin_phase("await-init-callbacks");
  const int expected = launch_.process_count();
  if (fault::FaultInjector* injector = launch_.fault_injector()) {
    // Fault-tolerant wait: callbacks can be lost (dropped relay, dead
    // daemon) or duplicated, so collapse by pid and bound the whole wait.
    const machine::FaultTolerance& ft = launch_.cluster().spec().fault;
    std::set<int> reported;
    while (static_cast<int>(reported.size()) < expected) {
      auto cb = co_await app_->callbacks().recv_for(ft.init_callback_timeout);
      if (!cb.has_value()) break;  // the silent processes are not coming
      DT_EXPECT(cb->tag == kInitCallbackTag, "unexpected callback '", cb->tag, "'");
      reported.insert(cb->pid);
    }
    if (static_cast<int>(reported.size()) < expected) {
      std::vector<int> missing;
      for (int pid = 0; pid < expected; ++pid) {
        if (reported.count(pid) == 0) missing.push_back(pid);
      }
      injector->report().add(tool.engine().now(), "init-missing",
                             str::format("%zu of %d init callbacks never arrived",
                                         missing.size(), expected),
                             missing);
    }
    // Nodes whose daemon died during connect or the init hook run with no
    // instrumentation at all.
    note_degraded_nodes(tool.engine().now(), /*had_probes=*/false);
  } else {
    for (int received = 0; received < expected; ++received) {
      const dpcl::Callback cb = co_await app_->callbacks().recv();
      DT_EXPECT(cb.tag == kInitCallbackTag, "unexpected callback '", cb.tag, "'");
    }
  }
  end_phase();

  // Now it is safe to instrument: install everything the user queued.
  begin_phase("install-probes");
  if (!pending_inserts_.empty()) {
    std::vector<std::string> queued;
    queued.swap(pending_inserts_);
    co_await do_insert(tool, queued);
  }
  end_phase();

  // Release the spin waits.  The set-flag messages reach each node's
  // daemon with differing delays -- the second barrier of Figure 6
  // re-synchronises the processes before the main computation.
  begin_phase("release-spin");
  co_await app_->set_flag_all(tool, kSpinFlag, 1, /*blocking=*/true);
  note_degraded_nodes(tool.engine().now(), /*had_probes=*/!instrumented_.empty());
  end_phase();

  init_released_ = true;
  // From here on every broadcast is a mid-run patch: the circuit breaker
  // may quarantine sick nodes instead of waiting out their retries.
  app_->set_steady_state(true);
  create_and_instrument_ = tool.engine().now() - tool_start_time_;
}

sim::Coro<void> DynprofTool::do_insert(proc::SimThread& tool,
                                       const std::vector<std::string>& names) {
  // Degradation ladder bookkeeping: a node abandoned while this batch goes
  // in drops to Subset if it already carries probes (earlier batch, or an
  // earlier name of this one), to None otherwise.
  const bool had_probes_before = !instrumented_.empty();
  // Mid-run insertion must stop the target first (§3.4).
  const bool midrun = init_released_;
  if (midrun) {
    co_await app_->suspend_all(tool, options_.blocking_suspend);
    note_degraded_nodes(tool.engine().now(), had_probes_before);
  }
  std::size_t installed = 0;
  for (const auto& name : names) {
    const image::FunctionId fn = resolve(name);
    std::vector<std::int64_t> arg(1, static_cast<std::int64_t>(fn));
    co_await app_->install_probe(tool, fn, image::ProbeWhere::kEntry,
                                 image::snippet::call("VT_begin", arg),
                                 /*activate=*/true, /*blocking=*/true);
    co_await app_->install_probe(tool, fn, image::ProbeWhere::kExit,
                                 image::snippet::call("VT_end", arg),
                                 /*activate=*/true, /*blocking=*/true);
    note_degraded_nodes(tool.engine().now(), had_probes_before || installed > 0);
    ++installed;
    if (std::find(instrumented_.begin(), instrumented_.end(), name) == instrumented_.end()) {
      instrumented_.push_back(name);
    }
  }
  if (midrun) {
    co_await app_->resume_all(tool, /*blocking=*/false);
  }
}

sim::Coro<void> DynprofTool::do_remove(proc::SimThread& tool,
                                       const std::vector<std::string>& names) {
  const bool midrun = init_released_;
  if (midrun) {
    co_await app_->suspend_all(tool, options_.blocking_suspend);
  }
  for (const auto& name : names) {
    co_await app_->remove_function_probes(tool, resolve(name), /*blocking=*/true);
    instrumented_.erase(std::remove(instrumented_.begin(), instrumented_.end(), name),
                        instrumented_.end());
  }
  if (midrun) {
    co_await app_->resume_all(tool, /*blocking=*/false);
  }
}

sim::Coro<void> DynprofTool::insert_functions(const std::vector<std::string>& names) {
  DT_EXPECT(init_released_, "insert_functions before the application is running");
  co_await do_insert(tool_thread(), names);
}

sim::Coro<void> DynprofTool::remove_functions(const std::vector<std::string>& names) {
  DT_EXPECT(init_released_, "remove_functions before the application is running");
  co_await do_remove(tool_thread(), names);
}

sim::Coro<void> DynprofTool::attach_preamble(proc::SimThread& tool) {
  // Dynamic attachment (§3.3's deferred extension): the job is already
  // executing; authenticate + attach, then verify through target memory
  // that the VT library has initialized -- the §3.4 safety constraint
  // holds for attachers too.
  DT_EXPECT(launch_.job().started(), "attach_to_running: the application is not running");
  begin_phase("dpcl-connect");
  std::vector<dpcl::SuperDaemon*> daemons;
  daemons.reserve(super_daemons_.size());
  for (auto& sd : super_daemons_) {
    sd->start(&tool);
    daemons.push_back(sd.get());
  }
  app_ = std::make_unique<dpcl::DpclApplication>(launch_.cluster(), launch_.job(),
                                                 tool_node_, std::move(daemons));
  co_await app_->connect(tool);
  end_phase();

  begin_phase("verify-vt-initialized");
  for (const auto& process : launch_.job().processes()) {
    // Reading target memory costs one daemon round trip; modelled as a
    // short wait per process.
    co_await tool.compute(launch_.cluster().spec().costs.dpcl_daemon_dispatch);
    DT_EXPECT(process->flag("vt_initialized") == 1,
              "attach: process ", process->pid(),
              " has not initialized VT yet; instrumentation would be unsafe (§3.4)");
  }
  end_phase();

  started_app_ = true;
  init_released_ = true;
  app_->set_steady_state(true);
  create_and_instrument_ = tool.engine().now() - tool_start_time_;
}

sim::Coro<void> DynprofTool::service_main() {
  proc::SimThread& tool = tool_process_->main_thread();
  tool_start_time_ = tool.engine().now();

  if (options_.attach_to_running) {
    co_await attach_preamble(tool);
  } else {
    co_await create_and_connect(tool);
    co_await install_init_hook(tool);
    started_app_ = true;
    launch_.start(&tool);
    co_await await_init_and_release(tool);
  }
  attached_->fire();

  // Park until the service detaches; all instrumentation traffic in
  // between arrives through insert_functions()/remove_functions().
  co_await detach_requested_->wait();
  finished_ = true;
}

sim::Coro<void> DynprofTool::tool_main(std::vector<Command> script) {
  proc::SimThread& tool = tool_process_->main_thread();
  tool_start_time_ = tool.engine().now();

  if (options_.attach_to_running) {
    co_await attach_preamble(tool);
    for (const Command& cmd : script) {
      DT_EXPECT(cmd.kind != CommandKind::kStart,
                "attach_to_running scripts must not contain 'start'");
    }
  } else {
    co_await create_and_connect(tool);
    co_await install_init_hook(tool);
  }

  for (const Command& cmd : script) {
    switch (cmd.kind) {
      case CommandKind::kHelp:
        log::info("dynprof", "\n", help_text());
        break;
      case CommandKind::kInsert:
      case CommandKind::kInsertFile: {
        std::vector<std::string> names;
        if (cmd.kind == CommandKind::kInsert) {
          names = cmd.args;
        } else {
          for (const auto& file : cmd.args) {
            const auto from_file = resolve_file(file);
            names.insert(names.end(), from_file.begin(), from_file.end());
          }
        }
        if (!started_app_ || !init_released_) {
          // Deferred until the Figure-6 callback confirms it is safe.
          pending_inserts_.insert(pending_inserts_.end(), names.begin(), names.end());
        } else {
          co_await do_insert(tool, names);
        }
        break;
      }
      case CommandKind::kRemove:
      case CommandKind::kRemoveFile: {
        std::vector<std::string> names;
        if (cmd.kind == CommandKind::kRemove) {
          names = cmd.args;
        } else {
          for (const auto& file : cmd.args) {
            const auto from_file = resolve_file(file);
            names.insert(names.end(), from_file.begin(), from_file.end());
          }
        }
        DT_EXPECT(started_app_ && init_released_,
                  "dynprof: remove before the application is running");
        co_await do_remove(tool, names);
        break;
      }
      case CommandKind::kStart:
        DT_EXPECT(!started_app_, "dynprof: application already started");
        started_app_ = true;
        launch_.start(&tool);
        co_await await_init_and_release(tool);
        break;
      case CommandKind::kWait:
        co_await tool.engine().sleep(sim::seconds(cmd.wait_seconds()));
        break;
      case CommandKind::kQuit:
        // Detach: active instrumentation stays in place (§3.3).
        finished_ = true;
        co_return;
    }
  }
  finished_ = true;
}

}  // namespace dyntrace::dynprof
