// HybridController: the combined paradigm the paper concludes is promising
// (§5.1, §6) -- ephemeral instrumentation in the sense of Traub et al. [15]:
//
//   1. watch the running application with cheap statistical sampling;
//   2. pick the functions where the time actually goes;
//   3. direct dynprof to dynamically insert detailed VT probes into just
//      those functions (suspend / patch / resume);
//   4. after a detail window, remove the probes again.
//
// The result is a complete-profile snapshot of exactly the interesting
// region, at sampling cost everywhere else -- trace volume and
// perturbation bounded by construction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dynprof/tool.hpp"
#include "sampling/sampler.hpp"

namespace dyntrace::dynprof {

class HybridController {
 public:
  struct Options {
    sim::TimeNs sample_window = sim::seconds(5);     ///< phase-1 duration
    sim::TimeNs sampling_interval = sim::milliseconds(5);
    sim::TimeNs per_sample_cost = sim::microseconds(12);
    std::size_t top_k = 4;                           ///< functions to instrument
    sim::TimeNs detail_window = sim::seconds(10);    ///< phase-3 duration
    bool remove_after_window = true;                 ///< phase 4
  };

  struct Report {
    std::vector<std::string> selected;  ///< functions chosen by sampling
    std::uint64_t total_samples = 0;
    sim::TimeNs instrumented_from = -1;
    sim::TimeNs instrumented_to = -1;
    bool instrumented = false;
    bool removed = false;
  };

  /// The tool must have been given a script that starts the application
  /// (or attach mode); the controller waits for initialization to
  /// complete, then drives phases 1-4 on the tool's thread.
  HybridController(Launch& launch, DynprofTool& tool, Options options);
  HybridController(const HybridController&) = delete;
  HybridController& operator=(const HybridController&) = delete;

  /// Spawn the controller coroutine; call before Engine::run().
  void start();

  const Report& report() const { return report_; }
  bool finished() const { return finished_; }

 private:
  sim::Coro<void> run();
  bool app_still_running() const { return !launch_.job().all_done().fired(); }

  Launch& launch_;
  DynprofTool& tool_;
  Options options_;
  std::vector<std::unique_ptr<sampling::Sampler>> samplers_;
  Report report_;
  bool finished_ = false;
};

}  // namespace dyntrace::dynprof
