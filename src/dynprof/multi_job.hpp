// MultiJobLaunch: several independent application jobs sharing one
// simulated cluster (DESIGN.md §15).
//
// The paper evaluates one job at a time on a dedicated machine; real
// production machines run many jobs at once, often sharing physical nodes,
// and a tool infrastructure must hold up under that contention (compare
// ScALPEL's always-on monitoring of concurrent applications, PAPERS.md).
// A MultiJobLaunch owns the shared substrate -- one parallel engine, one
// cluster, one telemetry registry, optionally one fault injector -- and
// builds a shared-substrate dynprof::Launch per job:
//
//   * each job gets its own node span (first_node) and, on shared nodes,
//     its own CPU range (first_cpu), registered as a machine::JobSpan so
//     messages touching multi-tenant nodes pay the tenancy surcharge;
//   * each Dynamic/Adaptive job gets its own DynprofTool instance on its
//     own login node above the union span -- independent tool sessions,
//     the multi-tool direction ROADMAP item 3 left open;
//   * fault plans apply across the whole machine: node-scoped verbs
//     (kill-daemon, stall, flap-daemon, degrade-daemon) hit every job on
//     the physical node, while rank-scoped verbs (kill-rank, tear-shard)
//     accept job=<name> to pick one job's rank space.
//
// Determinism: the whole scenario runs under the one conservative parallel
// engine, so results are bit-identical across --sim-threads like any
// single-job run (bench/multi_job.cpp gates on it).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dynprof/launch.hpp"
#include "dynprof/tool.hpp"

namespace dyntrace::control {
class StatsOverlay;
class BudgetController;
}  // namespace dyntrace::control

namespace dyntrace::dynprof {

struct MultiJobOptions {
  struct Job {
    const asci::AppSpec* app = nullptr;
    /// Unique job name (fault verbs and reports refer to it); defaults to
    /// the app name, which therefore must be unique across jobs.
    std::string name;
    asci::AppParams params;
    Policy policy = Policy::kDynamic;
    /// First node of the job's span.  Jobs may overlap node spans -- that
    /// is the point -- as long as their CPU ranges are disjoint.
    int first_node = 0;
    /// First CPU the job occupies on each of its nodes (jobs sharing a
    /// node take disjoint CPU ranges).
    int first_cpu = 0;
    /// Dynamic/Adaptive jobs: the dynprof command script.  Empty runs the
    /// plain insert-file/start/quit flow; set it to add mid-run inserts
    /// (what drives requests into a degraded daemon).
    std::string script;
  };

  std::vector<Job> jobs;
  std::optional<machine::MachineSpec> machine;  ///< default: IBM Power3 SP
  int sim_threads = 1;
  std::uint64_t seed = 42;
  std::shared_ptr<fault::FaultInjector> fault;
  telemetry::Level telemetry_level = telemetry::default_level();
  std::size_t trace_spill_bytes = 0;
  vt::TraceFormat trace_format = vt::TraceFormat::kV2;
  /// Adaptive jobs: safe-point cadence and overlay arity (mirrors
  /// RunConfig's defaults).
  int confsync_interval = 36;
  int tree_arity = 4;
};

struct MultiJobResult {
  struct JobResult {
    std::string job;
    Policy policy = Policy::kNone;
    int nprocs = 1;
    double app_seconds = 0;
    double total_seconds = 0;
    double create_instrument_seconds = 0;  ///< 0 for static policies
    std::uint64_t trace_events = 0;
    std::uint64_t trace_digest = 0;
    std::uint64_t stats_digest = 0;
    /// Job-local ranks dead at scenario end (job-scoped fault verbs).
    std::vector<int> lost_ranks;
  };

  std::vector<JobResult> jobs;
  /// FNV-1a fold of every job's trace + stats digest, in job order: the
  /// scenario-wide bit-identity witness for --sim-threads comparisons.
  std::uint64_t combined_digest = 0;
};

class MultiJobLaunch {
 public:
  explicit MultiJobLaunch(MultiJobOptions options);
  ~MultiJobLaunch();
  MultiJobLaunch(const MultiJobLaunch&) = delete;
  MultiJobLaunch& operator=(const MultiJobLaunch&) = delete;

  machine::Cluster& cluster() { return *cluster_; }
  sim::ParallelEngine& parallel_engine() { return *psim_; }
  telemetry::Registry& telemetry_registry() { return *telemetry_; }
  std::size_t job_count() const { return launches_.size(); }
  Launch& launch(std::size_t job) { return *launches_[job]; }
  /// The job's tool instance; null for static-policy jobs.
  DynprofTool* tool(std::size_t job) { return tools_[job].get(); }

  /// Start every job (static jobs directly, Dynamic/Adaptive through their
  /// tools), run the shared engine to completion, and collect per-job
  /// results.  Call once.
  MultiJobResult run_to_completion();

 private:
  MultiJobOptions options_;
  std::unique_ptr<telemetry::Registry> telemetry_;
  std::optional<telemetry::ScopedRegistry> scoped_registry_;
  std::unique_ptr<sim::ParallelEngine> psim_;
  std::unique_ptr<machine::Cluster> cluster_;
  std::vector<std::unique_ptr<Launch>> launches_;
  std::vector<std::unique_ptr<DynprofTool>> tools_;  ///< null per static job
  std::vector<std::shared_ptr<control::StatsOverlay>> overlays_;
  std::vector<std::unique_ptr<control::BudgetController>> controllers_;
  bool ran_ = false;
};

}  // namespace dyntrace::dynprof
