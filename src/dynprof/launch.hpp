// Launch: assembles one VGV application run on the simulated cluster.
//
// A Launch owns the whole stack for a single experiment: engine, cluster,
// MPI world (or OpenMP runtime), parallel job, per-process VT libraries with
// their MPI wrappers / OpenMP listeners, and per-process AppContexts.  The
// instrumentation policy (paper Table 3) selects static instrumentation and
// the VT configuration file:
//
//   Full     -- all subroutines statically instrumented, no config file
//   Full-Off -- statically instrumented, config deactivates everything
//   Subset   -- statically instrumented, config leaves the subset active
//   None     -- no subroutine instrumentation at all
//   Dynamic  -- no static instrumentation; dynprof patches probes in
//   Adaptive -- dynprof patches in full coverage; the control plane's
//               budget controller prunes it at VT_confsync safe points
//               (an extension beyond the paper's Table 3; see src/control)
//
// MPI tracing through the wrapper interface is on in every policy (the VT
// library is always linked in VGV).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "asci/app.hpp"
#include "machine/cluster.hpp"
#include "mpi/world.hpp"
#include "omp/runtime.hpp"
#include "proc/job.hpp"
#include "sim/engine.hpp"
#include "sim/parallel_engine.hpp"
#include "telemetry/registry.hpp"
#include "vt/interpose.hpp"
#include "vt/trace_store.hpp"
#include "vt/vtlib.hpp"

namespace dyntrace::fault {
class FaultInjector;
}  // namespace dyntrace::fault

namespace dyntrace::dynprof {

enum class Policy : int { kFull, kFullOff, kSubset, kNone, kDynamic, kAdaptive };

const char* to_string(Policy policy);
Policy policy_from_string(const std::string& name);

/// Table 3 descriptions, generated from the implementation.
struct PolicyInfo {
  Policy policy;
  const char* name;
  const char* description;
};
const std::vector<PolicyInfo>& policy_table();

/// The policies evaluated for an app (Sweep3d has no Subset run, §4.3).
std::vector<Policy> policies_for(const asci::AppSpec& app);

class Launch {
 public:
  struct Options {
    const asci::AppSpec* app = nullptr;
    asci::AppParams params;
    Policy policy = Policy::kNone;
    std::optional<machine::MachineSpec> machine;  ///< default: IBM Power3 SP
    std::size_t vt_buffer_records = 16384;
    /// Per-process trace-shard byte budget before sorted runs spill to
    /// disk (0 = keep shards fully in memory; see vt::ShardOptions).
    std::size_t trace_spill_bytes = 0;
    /// Spill directory for shard runs; empty = system temp directory.
    std::string trace_spill_dir;
    /// On-disk encoding for spilled runs (and the write_binary default):
    /// v2 delta blocks by default, v1 fixed records for migration.
    vt::TraceFormat trace_format = vt::TraceFormat::kV2;
    /// First node used for application processes (tool daemons etc. can
    /// use the nodes above the application's).
    int first_app_node = 0;
    /// First CPU the application occupies on each of its nodes.  Jobs that
    /// share physical nodes in a multi-job run take disjoint CPU ranges
    /// (DESIGN.md §15); 0 = start at the node's first CPU.
    int first_app_cpu = 0;
    /// Name job-scoped fault verbs (kill-rank job=..., tear-shard job=...)
    /// match this run by; defaults to the app name.  Multi-job scenarios
    /// give every job a unique name.
    std::string job_name;
    /// Shared-substrate mode (multi-job runs; DESIGN.md §15): borrow an
    /// existing engine + cluster instead of owning them.  Both must outlive
    /// the Launch, and the caller is responsible for partitioning the
    /// cluster over the union of all job spans *before* constructing any
    /// Launch (processes bind their home engines at construction).  When
    /// set, `sim_threads` is ignored (the shared engine fixes it) and the
    /// Launch does not re-partition.  Null = classic single-job mode.
    sim::ParallelEngine* shared_engine = nullptr;
    machine::Cluster* shared_cluster = nullptr;
    /// Shared telemetry registry for multi-job runs: the Launch then skips
    /// creating and installing its own, so all jobs' hooks land in the
    /// scenario-wide registry the caller installed.  Requires shared_engine.
    telemetry::Registry* shared_telemetry = nullptr;
    /// Standard deviation of per-process clock offsets (0 = perfect global
    /// clock).  Rank 0 is always the anchor; see analysis/clock_sync.hpp
    /// for the postmortem correction.
    sim::TimeNs clock_skew_stddev = 0;
    /// Simulation worker threads (shards of the conservative parallel
    /// engine).  1 = classic sequential run; results are bit-identical for
    /// every value.  See DESIGN.md §8.
    int sim_threads = 1;
    /// Fault injector driving this run (DESIGN.md §9).  Null (the default)
    /// keeps every layer on its legacy code path -- runs without a plan are
    /// bit-identical to a build without the fault harness.
    std::shared_ptr<fault::FaultInjector> fault;
    /// Self-telemetry level for this run (DESIGN.md §12).  The Launch owns
    /// a private registry installed as telemetry::current() for its whole
    /// lifetime, so every layer's hooks land in this run's counters.
    telemetry::Level telemetry_level = telemetry::default_level();
  };

  explicit Launch(Options options);
  ~Launch();
  Launch(const Launch&) = delete;
  Launch& operator=(const Launch&) = delete;

  /// The coordinator shard (shard 0).  Setup/inspection only; prefer
  /// run_engine() to drive a run so multi-shard launches parallelise.
  sim::Engine& engine() { return psim_->shard(0); }
  sim::ParallelEngine& parallel_engine() { return *psim_; }
  /// Run all shards to completion (or `deadline`) under the conservative
  /// window protocol; with sim_threads == 1 this is exactly engine().run().
  void run_engine(sim::TimeNs deadline = -1) { psim_->run(deadline); }
  machine::Cluster& cluster() { return *cluster_; }
  proc::ParallelJob& job() { return *job_; }
  mpi::World* world() { return world_.get(); }  ///< null for pure OpenMP apps
  /// Process 0's OpenMP runtime; null for pure MPI apps.
  omp::OmpRuntime* omp_runtime() {
    return omp_runtimes_.empty() ? nullptr : omp_runtimes_.front().get();
  }
  /// Per-rank team (kMixed apps); null for pure MPI apps.
  omp::OmpRuntime* omp_runtime(int pid) {
    return static_cast<std::size_t>(pid) < omp_runtimes_.size()
               ? omp_runtimes_[static_cast<std::size_t>(pid)].get()
               : nullptr;
  }
  vt::VtLib& vt(int pid) { return *vts_[static_cast<std::size_t>(pid)]; }
  asci::AppContext& context(int pid) { return *contexts_[static_cast<std::size_t>(pid)]; }
  std::shared_ptr<vt::TraceStore> trace() { return store_; }
  std::shared_ptr<vt::StagedUpdate> staged() { return staged_; }
  /// This run's telemetry registry (installed as telemetry::current() while
  /// the Launch is alive).
  telemetry::Registry& telemetry_registry() { return *telemetry_; }
  const telemetry::Registry& telemetry_registry() const { return *telemetry_; }
  /// The run's fault injector; null for healthy runs.
  fault::FaultInjector* fault_injector() const { return options_.fault.get(); }
  const Options& options() const { return options_; }
  /// The (resolved) job name fault plans scope job-local verbs by.
  const std::string& job_name() const { return options_.job_name; }
  int process_count() const { return static_cast<int>(job_->size()); }

  /// Start the application (static policies; dynprof drives this itself for
  /// the Dynamic policy).  Pass the calling simulated thread when starting
  /// mid-run (see ParallelJob::start).
  void start(proc::SimThread* origin = nullptr) { job_->start(origin); }

  /// Simulation time when the last rank finished MPI_Init/VT_init (i.e.
  /// when the main computation begins, after any dynamic-instrumentation
  /// stall); -1 before that point.
  sim::TimeNs init_complete_time() const { return init_complete_; }

  /// Fires when every rank has completed initialization (what
  /// init_complete_time() records); tool-side controllers wait on this.
  sim::Trigger& init_complete_trigger() { return init_trigger_; }

  struct Result {
    double total_seconds = 0;  ///< job start -> last process exit
    double app_seconds = 0;    ///< post-initialization main computation (Fig. 7 metric)
    std::uint64_t trace_events = 0;     ///< virtual events incl. aggregated calls
    std::uint64_t filtered_events = 0;  ///< probe executions filtered by the config table
  };

  /// Start + run the engine to completion and collect the result (static
  /// policies only; Dynamic runs go through DynprofTool).
  Result run_to_completion();

  /// Collect the result after the engine has been run externally.
  Result collect_result() const;

 private:
  sim::Coro<void> rank_main(int pid, proc::SimThread& thread);

  Options options_;
  // The registry outlives everything below it: spans emitted while ~Engine
  // destroys surviving coroutine frames must still find it alive.  In
  // shared-substrate mode the owned_ slots stay null and the raw pointers
  // alias the caller's objects (which outlive the Launch by contract).
  std::unique_ptr<telemetry::Registry> owned_telemetry_;
  telemetry::Registry* telemetry_ = nullptr;
  std::optional<telemetry::ScopedRegistry> scoped_registry_;
  // The engine group must outlive (i.e. be declared before) everything the
  // coroutine frames it owns may reference during teardown.
  std::unique_ptr<sim::ParallelEngine> owned_psim_;
  sim::ParallelEngine* psim_ = nullptr;
  std::unique_ptr<machine::Cluster> owned_cluster_;
  machine::Cluster* cluster_ = nullptr;
  std::shared_ptr<vt::TraceStore> store_;
  std::shared_ptr<vt::StagedUpdate> staged_;
  std::unique_ptr<mpi::World> world_;
  std::unique_ptr<proc::ParallelJob> job_;
  std::vector<std::unique_ptr<omp::OmpRuntime>> omp_runtimes_;
  std::vector<std::unique_ptr<vt::VtLib>> vts_;
  std::vector<std::unique_ptr<vt::VtMpiInterpose>> interposes_;
  std::vector<std::unique_ptr<vt::VtOmpListener>> omp_listeners_;
  std::vector<std::unique_ptr<asci::AppContext>> contexts_;

  // Init bookkeeping is updated from each rank's home shard; the mutex
  // covers concurrent completions, and count + max-time are
  // order-independent so the values stay deterministic.
  std::mutex init_mutex_;
  int init_done_count_ = 0;
  sim::TimeNs init_latest_ = 0;   ///< max init time seen so far
  sim::TimeNs init_complete_ = -1;
  sim::Trigger init_trigger_;
};

}  // namespace dyntrace::dynprof
