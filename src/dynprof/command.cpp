#include "dynprof/command.hpp"

#include <sstream>

#include "support/common.hpp"
#include "support/strings.hpp"

namespace dyntrace::dynprof {

const std::vector<CommandInfo>& command_table() {
  static const std::vector<CommandInfo> table = {
      {CommandKind::kHelp, "help", "h", "Displays a help message"},
      {CommandKind::kInsert, "insert", "i",
       "Inserts instrumentation into one or more functions."},
      {CommandKind::kRemove, "remove", "r",
       "Removes instrumentation from one or more functions."},
      {CommandKind::kInsertFile, "insert-file", "if",
       "Inserts instrumentation into all of the functions listed in the provided file or "
       "files."},
      {CommandKind::kRemoveFile, "remove-file", "rf",
       "Removes instrumentation from all of the functions listed in the provided file or "
       "files."},
      {CommandKind::kStart, "start", "s", "Starts execution of the target application."},
      {CommandKind::kQuit, "quit", "q", "Detaches the instrumenter from the application."},
      {CommandKind::kWait, "wait", "w",
       "Causes the tool to wait before executing the next command."},
  };
  return table;
}

double Command::wait_seconds() const {
  if (args.empty()) return 1.0;
  const auto parsed = str::parse_f64(args[0]);
  DT_EXPECT(parsed.has_value() && *parsed >= 0, "wait: bad duration '", args[0], "'");
  return *parsed;
}

std::optional<Command> parse_command(const std::string& line) {
  std::string_view text = str::trim(line);
  if (text.empty() || text.front() == '#') return std::nullopt;
  auto words = str::split_ws(text);
  const std::string verb = str::to_lower(words[0]);

  for (const auto& info : command_table()) {
    if (verb == info.name || verb == info.shortcut) {
      Command cmd;
      cmd.kind = info.kind;
      cmd.args.assign(words.begin() + 1, words.end());
      switch (cmd.kind) {
        case CommandKind::kInsert:
        case CommandKind::kRemove:
          DT_EXPECT(!cmd.args.empty(), info.name, ": expected at least one function name");
          break;
        case CommandKind::kInsertFile:
        case CommandKind::kRemoveFile:
          DT_EXPECT(!cmd.args.empty(), info.name, ": expected at least one file name");
          break;
        case CommandKind::kWait:
          (void)cmd.wait_seconds();  // validate
          break;
        default:
          DT_EXPECT(cmd.args.empty(), info.name, ": takes no arguments");
          break;
      }
      return cmd;
    }
  }
  fail("unknown dynprof command '", verb, "' (try 'help')");
}

std::vector<Command> parse_script(const std::string& text) {
  std::vector<Command> script;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    try {
      if (auto cmd = parse_command(line)) script.push_back(std::move(*cmd));
    } catch (const Error& e) {
      fail("script line ", line_no, ": ", e.what());
    }
  }
  return script;
}

std::string help_text() {
  std::ostringstream os;
  os << "dynprof commands:\n";
  for (const auto& info : command_table()) {
    os << "  " << info.name << " (" << info.shortcut << ")  " << info.description << '\n';
  }
  return os.str();
}

}  // namespace dyntrace::dynprof
