#include "control/controller.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "image/image.hpp"
#include "support/common.hpp"
#include "telemetry/metrics.hpp"

namespace dyntrace::control {

namespace {

/// Modelled cost of the controller's own decision logic per active record
/// scanned (a table walk over the statistics snapshot).
constexpr sim::TimeNs kScanCostPerRecord = 200;

}  // namespace

const char* to_string(Actuator actuator) {
  return actuator == Actuator::kFilter ? "filter" : "probe";
}

BudgetController::BudgetController(ControllerOptions options) {
  DT_EXPECT(options.budget_fraction > 0, "budget_fraction must be positive");
  DT_EXPECT(options.reactivate_fraction > 0 && options.reactivate_fraction <= 1,
            "reactivate_fraction must be in (0, 1]");
  log_.options = options;
}

void BudgetController::attach(vt::VtLib& vt, std::shared_ptr<vt::StagedUpdate> staged) {
  DT_EXPECT(staged != nullptr, "controller needs the job's staged-update channel");
  staged_ = std::move(staged);
  vt.set_break_handler([this](vt::VtLib& v) { return on_break(v); });
}

std::vector<std::string> BudgetController::inactive_groups() const {
  std::vector<std::string> keys;
  for (const Group& g : groups_) {
    if (!g.active) keys.push_back(g.key);
  }
  return keys;
}

std::size_t BudgetController::group_for(vt::VtLib& vt, image::FunctionId fn) {
  if (auto it = fn_group_.find(fn); it != fn_group_.end()) return it->second;
  const image::SymbolTable& symbols = vt.process().image().symbols();
  const image::FunctionInfo& info = symbols.at(fn);
  const bool by_module = log_.options.group_by_module && !info.module.empty();
  const std::string key = by_module ? info.module : info.name;
  if (auto it = group_index_.find(key); it != group_index_.end()) {
    fn_group_.emplace(fn, it->second);
    groups_[it->second].fns.push_back(fn);
    return it->second;
  }
  const std::size_t index = groups_.size();
  groups_.push_back(Group{key, {}, true, 0, 0.0});
  group_index_.emplace(key, index);
  if (by_module) {
    // Enroll the *whole* family up front: observing one member of a module
    // must condemn (or reinstate) its siblings too, or generated-helper
    // families simply rotate fresh members into the hot set after every
    // staging round.
    for (const image::FunctionInfo& member : symbols.all()) {
      if (member.module != key) continue;
      groups_[index].fns.push_back(member.id);
      fn_group_.emplace(member.id, index);
    }
  } else {
    groups_[index].fns.push_back(fn);
    fn_group_.emplace(fn, index);
  }
  return index;
}

sim::TimeNs BudgetController::on_break(vt::VtLib& vt) {
  const std::uint64_t sync = ++syncs_seen_;
  const sim::TimeNs now = vt.process().engine().now();
  const Estimate est = estimator_.update(vt, now);
  const ControllerOptions& opt = log_.options;

  // kProbe: removed groups are invisible to the estimator; age their
  // remembered rates here so speculation (if enabled) can eventually fire.
  if (opt.actuator == Actuator::kProbe && opt.stale_rate_decay < 1.0) {
    for (Group& g : groups_) {
      if (!g.active) g.remembered_rate *= opt.stale_rate_decay;
    }
  }
  if (est.window <= 0) return 0;

  // Fold function estimates into group accumulators for this window.
  struct Acc {
    sim::TimeNs current = 0;
    sim::TimeNs active = 0;
    sim::TimeNs residual = 0;
    std::uint64_t pairs = 0;
    sim::TimeNs exclusive = 0;
  };
  std::unordered_map<std::size_t, Acc> accs;
  for (const FunctionEstimate& f : est.functions) {
    Acc& a = accs[group_for(vt, f.fn)];
    a.current += f.current_cost;
    a.active += f.active_cost;
    a.residual += f.residual_cost;
    a.pairs += f.pairs + f.suppressed;
    a.exclusive += f.mean_exclusive * static_cast<sim::TimeNs>(f.pairs);
  }

  if (std::getenv("DT_CONTROL_DEBUG") != nullptr) {
    std::fprintf(stderr, "[control] sync %llu window %.3fs total %.3fs (%.1f%%)\n",
                 static_cast<unsigned long long>(sync), est.window / 1e9,
                 est.total_cost / 1e9, est.overhead_fraction() * 100);
    for (const auto& [index, a] : accs) {
      std::fprintf(stderr, "  group %-18s cur %.4fs act %.4fs pairs %llu\n",
                   groups_[index].key.c_str(), a.current / 1e9, a.active / 1e9,
                   static_cast<unsigned long long>(a.pairs));
    }
  }

  const double window = static_cast<double>(est.window);
  double projected = est.overhead_fraction();
  Decision decision;
  decision.sync = sync;
  decision.time = now;
  decision.estimated_overhead = projected;

  std::vector<std::size_t> deactivate;
  std::vector<std::size_t> reactivate;

  if (projected > opt.budget_fraction) {
    // Rank candidates by overhead per unit of information: a group burning
    // budget on sub-microsecond leaf calls scores far above one whose pairs
    // carry real exclusive time, so it is condemned first (the paper's
    // "uninteresting frequently called small subroutines").
    struct Candidate {
      double score;
      double savings;  ///< projection drop if deactivated
      std::size_t index;
    };
    std::vector<Candidate> candidates;
    for (const auto& [index, a] : accs) {
      Group& g = groups_[index];
      if (!g.active || a.pairs < opt.min_pairs) continue;
      if (sync - g.last_change_sync < static_cast<std::uint64_t>(opt.min_dwell_syncs) &&
          g.last_change_sync != 0) {
        continue;
      }
      const double cost_fraction = static_cast<double>(a.current) / window;
      const double mean_exclusive_us =
          a.pairs > 0 ? static_cast<double>(a.exclusive) / static_cast<double>(a.pairs) / 1e3
                      : 0.0;
      const double floor_fraction =
          opt.actuator == Actuator::kFilter ? static_cast<double>(a.residual) / window : 0.0;
      candidates.push_back(
          Candidate{cost_fraction / (1.0 + mean_exclusive_us),
                    cost_fraction - floor_fraction, index});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) { return x.score > y.score; });
    for (const Candidate& cand : candidates) {
      if (projected <= opt.budget_fraction) break;
      // Condemning a group that contributes noise-level savings loses its
      // coverage without moving the projection: require at least 1% of the
      // budget back before switching a group off.
      if (cand.savings <= 0.01 * opt.budget_fraction) continue;
      Group& g = groups_[cand.index];
      g.active = false;
      g.last_change_sync = sync;
      g.remembered_rate = static_cast<double>(accs[cand.index].active) / window;
      projected -= cand.savings;
      deactivate.push_back(cand.index);
      decision.deactivated.push_back(g.key);
    }
  } else if (projected < opt.reactivate_fraction * opt.budget_fraction) {
    // Headroom: bring groups back, cheapest projection first, as long as
    // the total stays inside the budget (not just inside the headroom
    // band -- that asymmetry is the hysteresis).
    struct Candidate {
      double added;  ///< projection increase if reactivated
      std::size_t index;
    };
    std::vector<Candidate> candidates;
    for (std::size_t index = 0; index < groups_.size(); ++index) {
      Group& g = groups_[index];
      if (g.active) continue;
      if (sync - g.last_change_sync < static_cast<std::uint64_t>(opt.min_dwell_syncs)) {
        continue;
      }
      double added;
      if (opt.actuator == Actuator::kFilter) {
        // The filtered counters kept counting, so this window *is* the
        // group's live rate: project the reactivation cost from it.  No
        // activity at all means the rate collapsed -- reinstating coverage
        // is free (and the next window re-measures it if it comes back).
        const auto it = accs.find(index);
        added = it == accs.end()
                    ? 0.0
                    : static_cast<double>(it->second.active - it->second.current) / window;
      } else {
        if (opt.stale_rate_decay >= 1.0) continue;  // speculation disabled
        added = groups_[index].remembered_rate;
      }
      candidates.push_back(Candidate{added, index});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) { return x.added < y.added; });
    for (const Candidate& cand : candidates) {
      if (projected + cand.added > opt.budget_fraction) continue;
      Group& g = groups_[cand.index];
      g.active = true;
      g.last_change_sync = sync;
      projected += cand.added;
      reactivate.push_back(cand.index);
      decision.reactivated.push_back(g.key);
    }
  }

  decision.projected_overhead = projected;
  if (!deactivate.empty() || !reactivate.empty()) {
    stage(deactivate, reactivate, vt);
  }
  telemetry::Registry& reg = telemetry::current();
  const telemetry::Metrics& tm = reg.metrics();
  reg.add(tm.control_decisions);
  reg.add(tm.control_deactivations, decision.deactivated.size());
  reg.add(tm.control_reactivations, decision.reactivated.size());
  if (reg.spans_enabled() && (!decision.deactivated.empty() || !decision.reactivated.empty())) {
    // Mark staging decisions on the tool track so they line up against the
    // confsync spans of the ranks that will apply them next round.
    reg.name_track(telemetry::Metrics::kToolTrack, "controller");
    reg.span_instant(tm.span_decision, telemetry::Metrics::kToolTrack, now);
  }
  log_.decisions.push_back(decision);
  return kScanCostPerRecord * static_cast<sim::TimeNs>(est.functions.size());
}

void BudgetController::stage(const std::vector<std::size_t>& deactivate,
                             const std::vector<std::size_t>& reactivate, vt::VtLib& vt) {
  // Safe to overwrite: the confsync protocol ends in a barrier, so every
  // rank applied the previous version before this break could run.
  staged_->program.clear();
  staged_->probe_edits.clear();
  const image::SymbolTable& symbols = vt.process().image().symbols();
  auto emit = [&](std::size_t index, bool activate) {
    for (const image::FunctionId fn : groups_[index].fns) {
      if (log_.options.actuator == Actuator::kFilter) {
        staged_->program.push_back(vt::FilterDirective{activate, symbols.at(fn).name});
      } else {
        staged_->probe_edits.push_back(vt::ProbeEdit{fn, activate});
      }
    }
  };
  for (const std::size_t index : deactivate) emit(index, false);
  for (const std::size_t index : reactivate) emit(index, true);
  ++staged_->version;
}

void install_probe_edit_applier(vt::VtLib& vt) {
  vt.set_apply_edits_handler(
      [](vt::VtLib& v, const std::vector<vt::ProbeEdit>& edits) -> sim::TimeNs {
        image::ProgramImage& img = v.process().image();
        const machine::CostModel& c = v.process().cluster().spec().costs;
        std::int64_t probes_touched = 0;
        for (const vt::ProbeEdit& edit : edits) {
          if (edit.instrument) {
            // Idempotent: skip points that already carry a probe.
            if (!img.probe_point(edit.fn, image::ProbeWhere::kEntry).minis.empty()) continue;
            img.install_probe(edit.fn, image::ProbeWhere::kEntry,
                              image::snippet::call("VT_begin", {static_cast<std::int64_t>(edit.fn)}));
            img.install_probe(edit.fn, image::ProbeWhere::kExit,
                              image::snippet::call("VT_end", {static_cast<std::int64_t>(edit.fn)}));
            probes_touched += 2;
          } else {
            for (auto where : {image::ProbeWhere::kEntry, image::ProbeWhere::kExit}) {
              // Copy the handles first: removal mutates the mini list.
              std::vector<image::ProbeHandle> handles;
              for (const auto& mini : img.probe_point(edit.fn, where).minis) {
                handles.push_back(mini.handle);
              }
              for (const auto handle : handles) {
                if (img.remove_probe(handle)) ++probes_touched;
              }
            }
          }
        }
        return c.dpcl_patch_per_probe * probes_touched;
      });
}

}  // namespace dyntrace::control
