// Overhead-budget feedback controller (the control plane's brain).
//
// Runs inside rank 0's configuration_break() at every VT_confsync safe
// point: the estimator measures each function's probe cost x call rate over
// the last window, functions fold into *groups* (by source module, so one
// observed member of a family of generated helpers condemns the whole
// family before the rest rotate into the hot set), and a feedback policy
// keeps the job's instrumentation overhead inside a budget:
//
//   * over budget  -> deactivate the highest-overhead / lowest-information
//     groups until the projection fits;
//   * comfortable headroom (below reactivate_fraction x budget) -> bring
//     groups back, cheapest projected cost first, while the projection
//     stays inside the budget.
//
// Hysteresis: a group must dwell min_dwell_syncs safe points in its state
// before it can flip back, and reactivation needs real headroom, not just
// being under budget.
//
// Two actuators:
//   * kFilter stages VT filter directives.  A deactivated function still
//     pays call + table lookup, but keeps counting (FuncStats.filtered), so
//     reactivation projections stay precise.
//   * kProbe stages probe removals/inserts.  A removed probe costs exactly
//     zero -- and is blind: the controller only remembers the group's rate
//     from when it was removed.  With stale_rate_decay >= 1 (default) a
//     removed group is never reactivated; < 1 decays the remembered rate
//     per sync and reactivates speculatively once it fades inside the
//     headroom.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "control/estimator.hpp"
#include "vt/vtlib.hpp"

namespace dyntrace::control {

enum class Actuator : std::uint8_t { kFilter = 0, kProbe = 1 };

const char* to_string(Actuator actuator);

struct ControllerOptions {
  /// Target ceiling for instrumentation overhead as a fraction of runtime.
  double budget_fraction = 0.05;
  /// Reactivate only when the projection is below this fraction *of the
  /// budget* (hysteresis band between deactivation and reactivation).
  double reactivate_fraction = 0.6;
  /// Safe points a group must dwell in a state before flipping back.
  int min_dwell_syncs = 2;
  /// Ignore groups with fewer observed pairs in a window (noise floor).
  std::uint64_t min_pairs = 8;
  Actuator actuator = Actuator::kFilter;
  /// Group functions by source module (false: every function on its own).
  bool group_by_module = true;
  /// kProbe only: per-sync decay of a removed group's remembered rate;
  /// >= 1 disables speculative reactivation entirely.
  double stale_rate_decay = 1.0;
};

/// What the controller did at one safe point.
struct Decision {
  std::uint64_t sync = 0;            ///< 1-based safe-point index
  sim::TimeNs time = 0;              ///< simulated time of the decision
  double estimated_overhead = 0.0;   ///< measured fraction, last window
  double projected_overhead = 0.0;   ///< fraction after the staged change
  std::vector<std::string> deactivated;  ///< group keys switched off
  std::vector<std::string> reactivated;  ///< group keys switched back on
};

struct DecisionLog {
  ControllerOptions options;
  std::vector<Decision> decisions;
};

class BudgetController {
 public:
  explicit BudgetController(ControllerOptions options = {});

  /// Wire this controller as `vt`'s configuration-break handler (call on
  /// rank 0's library only) with the job-wide staged-update channel all
  /// ranks share.
  void attach(vt::VtLib& vt, std::shared_ptr<vt::StagedUpdate> staged);

  const ControllerOptions& options() const { return log_.options; }
  const DecisionLog& log() const { return log_; }

  /// Keys of the groups currently switched off.
  std::vector<std::string> inactive_groups() const;

 private:
  struct Group {
    std::string key;
    std::vector<image::FunctionId> fns;  ///< members observed so far
    bool active = true;
    std::uint64_t last_change_sync = 0;
    /// kProbe: the group's active-cost rate (ns overhead per ns of run)
    /// remembered from the removal window, decayed per sync.
    double remembered_rate = 0.0;
  };

  sim::TimeNs on_break(vt::VtLib& vt);
  std::size_t group_for(vt::VtLib& vt, image::FunctionId fn);
  void stage(const std::vector<std::size_t>& deactivate,
             const std::vector<std::size_t>& reactivate, vt::VtLib& vt);

  std::shared_ptr<vt::StagedUpdate> staged_;
  OverheadEstimator estimator_;
  std::vector<Group> groups_;
  std::unordered_map<std::string, std::size_t> group_index_;
  std::unordered_map<image::FunctionId, std::size_t> fn_group_;
  std::uint64_t syncs_seen_ = 0;
  DecisionLog log_;
};

/// Install the probe actuator's apply handler on one rank's library: staged
/// ProbeEdits are applied to that process's image at the safe point
/// (removing a function's VT mini-trampolines, or re-inserting the
/// VT_begin/VT_end pair), charging DPCL patch time per probe touched.
/// Must be installed on *every* rank's VtLib when Actuator::kProbe is used.
void install_probe_edit_applier(vt::VtLib& vt);

}  // namespace dyntrace::control
