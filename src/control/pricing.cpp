#include "control/pricing.hpp"

#include <variant>

#include "image/image.hpp"
#include "support/common.hpp"

namespace dyntrace::control {

namespace {

/// VT_begin/VT_end call sites inside a snippet body.
int vt_call_count(const image::Snippet& snippet) {
  struct Visitor {
    int operator()(const image::NoOp&) const { return 0; }
    int operator()(const image::CallLibOp& op) const {
      return op.function == "VT_begin" || op.function == "VT_end" ? 1 : 0;
    }
    int operator()(const image::SequenceOp& op) const {
      int n = 0;
      for (const auto& item : op.items) n += vt_call_count(*item);
      return n;
    }
    int operator()(const image::SetFlagOp&) const { return 0; }
    int operator()(const image::SpinUntilOp&) const { return 0; }
    int operator()(const image::CallbackOp&) const { return 0; }
  };
  return std::visit(Visitor{}, snippet.node());
}

PairPrice price_from(sim::TimeNs structural, int vt_calls, const vt::VtLib& vt,
                     const machine::CostModel& c) {
  PairPrice price;
  price.active = structural + vt_calls * vt.active_call_cost();
  price.residual = structural + vt_calls * (c.vt_call_overhead + c.vt_filter_lookup);
  return price;
}

}  // namespace

PairPrice pair_price(const vt::VtLib& vt, image::FunctionId fn) {
  const machine::CostModel& c = vt.process().cluster().spec().costs;
  const image::ProgramImage& img = vt.process().image();
  sim::TimeNs structural = 0;
  int vt_calls = 0;
  for (auto where : {image::ProbeWhere::kEntry, image::ProbeWhere::kExit}) {
    structural += img.trampoline_overhead(fn, where, c);
    for (const auto& snippet : img.active_snippets(fn, where)) {
      vt_calls += vt_call_count(*snippet);
    }
  }
  if (img.static_instrumented(fn)) vt_calls += 2;
  return price_from(structural, vt_calls, vt, c);
}

PairPrice probe_pair_price(const vt::VtLib& vt) {
  const machine::CostModel& c = vt.process().cluster().spec().costs;
  // One side of the standard insert: a base trampoline with one active
  // mini-trampoline dispatching a single VT call (see
  // image::ProgramImage::trampoline_overhead for the as-built formula this
  // mirrors).
  const sim::TimeNs side = c.tramp_jump + c.tramp_save_regs + c.tramp_restore_regs +
                           c.tramp_relocated_insn + c.tramp_mini_dispatch;
  return price_from(2 * side, /*vt_calls=*/2, vt, c);
}

double overhead_fraction(sim::TimeNs price, double pairs_per_sec) {
  return static_cast<double>(price) * pairs_per_sec / 1e9;
}

ProbeSetQuote quote_probe_set(const vt::VtLib& vt, const std::vector<QuoteLine>& lines) {
  const PairPrice hypothetical = probe_pair_price(vt);
  ProbeSetQuote quote;
  for (const QuoteLine& line : lines) {
    PairPrice price = pair_price(vt, line.fn);
    if (price.active == 0) price = hypothetical;  // untouched: price the standard insert
    quote.active_fraction += overhead_fraction(price.active, line.pairs_per_sec);
    quote.residual_fraction += overhead_fraction(price.residual, line.pairs_per_sec);
  }
  return quote;
}

}  // namespace dyntrace::control
