// Const, side-effect-free pricing of instrumentation probe sets.
//
// The overhead estimator (PR 2) always knew how to price one enter/exit
// pair of a function in the current image + library state; that arithmetic
// lived in its .cpp and was only reachable through the mutating
// OverheadEstimator::update().  The multi-tenant control service needs to
// *quote* a session's requested probe set -- what would this cost per pair,
// and what fraction of the job's runtime would it burn at an observed call
// rate -- without touching any controller state.  This header is that
// query API: every function here is const over the library and allocates
// nothing shared.
//
// Two pricing modes:
//   * pair_price()        -- the as-built state: trampolines actually
//                            installed, snippets actually present.  What
//                            the estimator charges for observed windows.
//   * probe_pair_price()  -- the hypothetical state: what one function
//                            WOULD cost per pair if it carried the
//                            standard dynprof probe pair (VT_begin at
//                            entry, VT_end at exit, one mini-trampoline
//                            each).  What admission control quotes for
//                            not-yet-installed requests.
#pragma once

#include <vector>

#include "vt/vtlib.hpp"

namespace dyntrace::control {

/// Price of one enter/exit pair in two hypothetical library states: fully
/// active, and deactivated through the filter table (early-out after the
/// lookup).  The trampoline share is common to both -- the filter cannot
/// remove trampolines, only the probe actuator can.
struct PairPrice {
  sim::TimeNs active = 0;
  sim::TimeNs residual = 0;
};

/// Price one pair of `fn` in the *as-built* image state.  Zero for an
/// untouched function (no trampolines, no static instrumentation).
PairPrice pair_price(const vt::VtLib& vt, image::FunctionId fn);

/// Price one pair of a function carrying the standard dynamically inserted
/// probe set (entry VT_begin + exit VT_end, one mini-trampoline each) in
/// the current library state -- independent of whether any probe is
/// actually installed.  Uniform across functions, because every dynprof
/// insert installs the same snippet pair.
PairPrice probe_pair_price(const vt::VtLib& vt);

/// Overhead fraction of one function: `price` nanoseconds per pair at
/// `pairs_per_sec` completed pairs per second of simulated runtime.
double overhead_fraction(sim::TimeNs price, double pairs_per_sec);

/// One function of a hypothetical probe set, with its (observed or
/// assumed) steady call rate.
struct QuoteLine {
  image::FunctionId fn = 0;
  double pairs_per_sec = 0;
};

/// A priced probe set: what the set would cost as a fraction of runtime
/// fully active, and filter-deactivated (the Dynamic vs Subset rungs of
/// the degradation ladder).
struct ProbeSetQuote {
  double active_fraction = 0;
  double residual_fraction = 0;
};

/// Quote a hypothetical probe set against the current library state.
/// Functions already instrumented are priced as built; untouched functions
/// are priced as if they carried the standard probe pair.  Pure query: the
/// library, image, and filter are not modified.
ProbeSetQuote quote_probe_set(const vt::VtLib& vt, const std::vector<QuoteLine>& lines);

}  // namespace dyntrace::control
