#include "control/estimator.hpp"

#include <variant>

#include "image/image.hpp"
#include "support/common.hpp"

namespace dyntrace::control {

namespace {

/// VT_begin/VT_end call sites inside a snippet body.
int vt_call_count(const image::Snippet& snippet) {
  struct Visitor {
    int operator()(const image::NoOp&) const { return 0; }
    int operator()(const image::CallLibOp& op) const {
      return op.function == "VT_begin" || op.function == "VT_end" ? 1 : 0;
    }
    int operator()(const image::SequenceOp& op) const {
      int n = 0;
      for (const auto& item : op.items) n += vt_call_count(*item);
      return n;
    }
    int operator()(const image::SetFlagOp&) const { return 0; }
    int operator()(const image::SpinUntilOp&) const { return 0; }
    int operator()(const image::CallbackOp&) const { return 0; }
  };
  return std::visit(Visitor{}, snippet.node());
}

/// Price one enter/exit pair of `fn` in two hypothetical library states:
/// fully active, and deactivated through the filter table (early-out after
/// the lookup).  The trampoline share is common to both -- the filter can
/// not remove trampolines, only the probe actuator can.
struct PairPrice {
  sim::TimeNs active = 0;
  sim::TimeNs residual = 0;
};

PairPrice pair_price(vt::VtLib& vt, image::FunctionId fn) {
  const machine::CostModel& c = vt.process().cluster().spec().costs;
  const image::ProgramImage& img = vt.process().image();
  sim::TimeNs structural = 0;
  int vt_calls = 0;
  for (auto where : {image::ProbeWhere::kEntry, image::ProbeWhere::kExit}) {
    structural += img.trampoline_overhead(fn, where, c);
    for (const auto& snippet : img.active_snippets(fn, where)) {
      vt_calls += vt_call_count(*snippet);
    }
  }
  if (img.static_instrumented(fn)) vt_calls += 2;
  PairPrice price;
  price.active = structural + vt_calls * vt.active_call_cost();
  price.residual = structural + vt_calls * (c.vt_call_overhead + c.vt_filter_lookup);
  return price;
}

}  // namespace

Estimate OverheadEstimator::update(vt::VtLib& vt, sim::TimeNs now) {
  const std::vector<vt::FuncStats>& stats = vt.statistics();
  Estimate est;
  if (!primed_ || last_.size() != stats.size()) {
    last_ = stats;
    last_now_ = now;
    primed_ = true;
    return est;
  }
  est.window = now - last_now_;
  for (image::FunctionId fn = 0; fn < stats.size(); ++fn) {
    const vt::FuncStats& cur = stats[fn];
    const vt::FuncStats& prev = last_[fn];
    const std::uint64_t pairs = cur.calls - prev.calls;
    const std::uint64_t suppressed = (cur.filtered - prev.filtered) / 2;
    if (pairs == 0 && suppressed == 0) continue;

    FunctionEstimate f;
    f.fn = fn;
    f.pairs = pairs;
    f.suppressed = suppressed;
    const std::uint64_t total_pairs = pairs + suppressed;
    const PairPrice price = pair_price(vt, fn);
    f.active_cost = price.active * static_cast<sim::TimeNs>(total_pairs);
    f.residual_cost = price.residual * static_cast<sim::TimeNs>(total_pairs);
    // What this window actually cost: active pairs at the steady pair
    // price, suppressed pairs at the residual early-out price.
    f.current_cost =
        vt.steady_pair_overhead(fn) * static_cast<sim::TimeNs>(pairs) +
        price.residual * static_cast<sim::TimeNs>(suppressed);
    if (pairs > 0) {
      f.mean_exclusive =
          (cur.exclusive - prev.exclusive) / static_cast<sim::TimeNs>(pairs);
    }
    est.total_cost += f.current_cost;
    est.functions.push_back(f);
  }
  last_ = stats;
  last_now_ = now;
  return est;
}

}  // namespace dyntrace::control
