#include "control/estimator.hpp"

#include "control/pricing.hpp"
#include "image/image.hpp"
#include "support/common.hpp"

namespace dyntrace::control {

Estimate OverheadEstimator::quote(const vt::VtLib& vt, sim::TimeNs now) const {
  const std::vector<vt::FuncStats>& stats = vt.statistics();
  Estimate est;
  if (!primed_ || last_.size() != stats.size()) return est;
  est.window = now - last_now_;
  for (image::FunctionId fn = 0; fn < stats.size(); ++fn) {
    const vt::FuncStats& cur = stats[fn];
    const vt::FuncStats& prev = last_[fn];
    const std::uint64_t pairs = cur.calls - prev.calls;
    const std::uint64_t suppressed = (cur.filtered - prev.filtered) / 2;
    if (pairs == 0 && suppressed == 0) continue;

    FunctionEstimate f;
    f.fn = fn;
    f.pairs = pairs;
    f.suppressed = suppressed;
    const std::uint64_t total_pairs = pairs + suppressed;
    const PairPrice price = pair_price(vt, fn);
    f.active_cost = price.active * static_cast<sim::TimeNs>(total_pairs);
    f.residual_cost = price.residual * static_cast<sim::TimeNs>(total_pairs);
    // What this window actually cost: active pairs at the steady pair
    // price, suppressed pairs at the residual early-out price.
    f.current_cost =
        vt.steady_pair_overhead(fn) * static_cast<sim::TimeNs>(pairs) +
        price.residual * static_cast<sim::TimeNs>(suppressed);
    if (pairs > 0) {
      f.mean_exclusive =
          (cur.exclusive - prev.exclusive) / static_cast<sim::TimeNs>(pairs);
    }
    est.total_cost += f.current_cost;
    est.functions.push_back(f);
  }
  return est;
}

void OverheadEstimator::advance(const vt::VtLib& vt, sim::TimeNs now) {
  last_ = vt.statistics();
  last_now_ = now;
  primed_ = true;
}

Estimate OverheadEstimator::update(const vt::VtLib& vt, sim::TimeNs now) {
  Estimate est = quote(vt, now);
  advance(vt, now);
  return est;
}

}  // namespace dyntrace::control
