// Online per-function instrumentation-overhead estimator.
//
// At every safe point the controller diffs the VT library's statistics
// against the previous snapshot: the call-count delta over the elapsed
// window gives each function's call rate, and the library's steady-state
// cost queries price one enter/exit pair in the current image state.  The
// product -- probe cost x call rate -- is the overhead the function
// contributed this window, and the same arithmetic projects what it *would*
// cost fully active (for reactivation) or filter-deactivated (for the
// residual-lookup actuator).
//
// The estimator reads one rank's library (rank 0, where the configuration
// break runs).  The workloads are SPMD, so rank 0's rates are
// representative of the job; the budget is enforced per process anyway.
#pragma once

#include <cstdint>
#include <vector>

#include "vt/vtlib.hpp"

namespace dyntrace::control {

/// One function's activity and overhead over the last window.
struct FunctionEstimate {
  image::FunctionId fn = 0;
  std::uint64_t pairs = 0;       ///< completed (recorded) pairs this window
  std::uint64_t suppressed = 0;  ///< filter-suppressed pairs this window
  sim::TimeNs current_cost = 0;  ///< overhead actually paid this window
  sim::TimeNs active_cost = 0;   ///< what the window would cost fully active
  sim::TimeNs residual_cost = 0; ///< what it would cost filter-deactivated
  sim::TimeNs mean_exclusive = 0;///< per completed pair; information proxy
};

/// A window's worth of estimates (only functions with activity appear).
struct Estimate {
  sim::TimeNs window = 0;      ///< elapsed simulated time since last update
  sim::TimeNs total_cost = 0;  ///< sum of current_cost
  std::vector<FunctionEstimate> functions;

  double overhead_fraction() const {
    return window > 0 ? static_cast<double>(total_cost) / static_cast<double>(window) : 0.0;
  }
};

class OverheadEstimator {
 public:
  /// Diff against the previous snapshot WITHOUT advancing it: a pure
  /// quote.  Calling quote() twice at the same instant returns the same
  /// estimate; no controller state changes.  Returns a zero-window
  /// estimate until the snapshot has been primed (see advance()).
  Estimate quote(const vt::VtLib& vt, sim::TimeNs now) const;

  /// Advance the snapshot to the library's current statistics: the next
  /// quote()/update() window starts here.  The first call primes the
  /// snapshot (the elapsed time before the first safe point includes
  /// startup and would dilute the rates, so the first window is dropped).
  void advance(const vt::VtLib& vt, sim::TimeNs now);

  /// quote() + advance(): diff against the previous snapshot and start
  /// the next window -- the controller's per-safe-point measurement step.
  Estimate update(const vt::VtLib& vt, sim::TimeNs now);

 private:
  std::vector<vt::FuncStats> last_;
  sim::TimeNs last_now_ = 0;
  bool primed_ = false;
};

}  // namespace dyntrace::control
