#include "control/overlay.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "fault/injector.hpp"
#include "mpi/world.hpp"
#include "support/common.hpp"
#include "support/strings.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace dyntrace::control {

namespace {

/// Overlay traffic lives in its own positive tag band (fault::kOverlayTagBase,
/// shared with the injector's channel classifier), far above anything the
/// workloads use (their tags are < 1000) and disjoint from the negative
/// collective space.  The per-rank round counter salts the tag so a slow
/// sync can never match the next one's messages.
constexpr int overlay_tag(std::uint32_t round) {
  return fault::kOverlayTagBase + static_cast<int>(round % 1'000'000u);
}

/// Serialized payload: a 16-byte header (round, record count) plus only the
/// records with activity -- idle functions travel for free.
std::int64_t payload_bytes(const std::vector<vt::FuncStats>& stats,
                           const machine::CostModel& costs) {
  return 16 + vt::nonzero_stat_count(stats) * costs.vt_stats_bytes_per_func;
}

}  // namespace

std::vector<int> ReductionPlan::children(int rank) const {
  std::vector<int> result;
  for (int i = 1; i <= arity; ++i) {
    const std::int64_t child = static_cast<std::int64_t>(rank) * arity + i;
    if (child >= size) break;
    result.push_back(static_cast<int>(child));
  }
  return result;
}

int ReductionPlan::depth() const {
  int levels = 0;
  // Rank size-1 is on the deepest level; walk its parent chain.
  for (int r = size - 1; r > 0; r = (r - 1) / arity) ++levels;
  return levels;
}

StatsOverlay::StatsOverlay(int arity) : arity_(arity) {
  DT_EXPECT(arity >= 2, "overlay arity must be >= 2, got ", arity);
}

void StatsOverlay::prepare(int size) {
  if (slots_.size() < static_cast<std::size_t>(size)) {
    slots_.resize(static_cast<std::size_t>(size));
    contrib_slots_.resize(static_cast<std::size_t>(size));
    round_.resize(static_cast<std::size_t>(size), 0);
  }
}

sim::Coro<void> StatsOverlay::reduce(proc::SimThread& thread, vt::VtLib& vt) {
  if (fault::FaultInjector* injector = vt.process().cluster().fault_injector()) {
    co_await reduce_ft(thread, vt, *injector);
    co_return;
  }
  const machine::CostModel& costs = vt.process().cluster().spec().costs;
  mpi::Rank* rank = vt.mpi_rank();
  const int p = rank != nullptr ? rank->size() : 1;
  const int r = rank != nullptr ? rank->rank() : 0;
  prepare(p);  // no-op after an up-front prepare(); lazy in sequential runs
  const std::uint32_t round = round_[static_cast<std::size_t>(r)]++;
  const ReductionPlan plan{p, arity_};

  telemetry::Registry& reg = telemetry::current();
  const telemetry::Metrics& tm = reg.metrics();
  const sim::TimeNs entered = thread.engine().now();
  telemetry::ScopedSpan span(
      reg, tm.span_reduce, static_cast<std::uint32_t>(r),
      [](const void* ctx) { return static_cast<const sim::Engine*>(ctx)->now(); },
      &thread.engine());

  std::vector<vt::FuncStats> acc = vt.statistics();
  for (const int child : plan.children(r)) {
    co_await rank->recv(thread, child, overlay_tag(round));
    const auto& from = slots_[static_cast<std::size_t>(child)];
    // Combine cost scales with the records that actually arrived, not with
    // the table size -- the interior rank's share of the reduction work.
    co_await thread.compute(costs.vt_stats_merge_per_record *
                            vt::nonzero_stat_count(from));
    vt::merge_stats(acc, from);
  }

  if (r == 0) {
    // The root formats + writes only the merged records: O(active funcs)
    // instead of the legacy path's O(P * nfuncs).
    co_await thread.compute(costs.vt_stats_write_per_record *
                            vt::nonzero_stat_count(acc));
    root_result_ = std::move(acc);
    ++rounds_;
    reg.add(tm.control_overlay_rounds);
    // Root fan-in latency: from the root entering the reduction to holding
    // the fully merged table (the wait for the slowest subtree dominates).
    reg.observe(tm.control_overlay_fanin_ns,
                static_cast<std::uint64_t>(thread.engine().now() - entered));
  } else {
    auto& slot = slots_[static_cast<std::size_t>(r)];
    slot = std::move(acc);
    co_await rank->send(thread, plan.parent(r), overlay_tag(round),
                        payload_bytes(slot, costs));
  }
}

sim::Coro<void> StatsOverlay::reduce_ft(proc::SimThread& thread, vt::VtLib& vt,
                                        fault::FaultInjector& injector) {
  const machine::CostModel& costs = vt.process().cluster().spec().costs;
  const machine::FaultTolerance& ft = vt.process().cluster().spec().fault;
  mpi::Rank* rank = vt.mpi_rank();
  const int p = rank != nullptr ? rank->size() : 1;
  const int r = rank != nullptr ? rank->rank() : 0;
  prepare(p);
  const std::uint32_t round = round_[static_cast<std::size_t>(r)]++;
  const ReductionPlan plan{p, arity_};

  // A rank killed by the fault plan contributes nothing; its parent's
  // bounded wait is what detects the silence.
  if (!injector.rank_alive(r, thread.engine().now(), job_)) co_return;
  const auto alive = [&](int q) {
    return injector.rank_alive(q, thread.engine().now(), job_);
  };

  telemetry::Registry& reg = telemetry::current();
  const telemetry::Metrics& tm = reg.metrics();
  const sim::TimeNs entered = thread.engine().now();
  telemetry::ScopedSpan span(
      reg, tm.span_reduce, static_cast<std::uint32_t>(r),
      [](const void* ctx) { return static_cast<const sim::Engine*>(ctx)->now(); },
      &thread.engine());

  // Effective children: live direct children, plus -- for every dead child
  // -- its own children, spliced up recursively (the re-parenting rule:
  // orphans attach to their first live ancestor, which is exactly who waits
  // for them here).
  std::vector<int> kids;
  {
    std::vector<int> frontier = plan.children(r);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const int child = frontier[i];
      if (alive(child)) {
        kids.push_back(child);
      } else {
        const auto grandchildren = plan.children(child);
        frontier.insert(frontier.end(), grandchildren.begin(), grandchildren.end());
      }
    }
  }

  std::vector<vt::FuncStats> acc = vt.statistics();
  std::vector<int> contributed{r};
  for (const int child : kids) {
    const bool got =
        co_await rank->recv_for(thread, child, overlay_tag(round), ft.overlay_child_timeout);
    if (!got) continue;  // silent subtree; the root will report it missing
    const auto& from = slots_[static_cast<std::size_t>(child)];
    co_await thread.compute(costs.vt_stats_merge_per_record * vt::nonzero_stat_count(from));
    vt::merge_stats(acc, from);
    const auto& merged_ranks = contrib_slots_[static_cast<std::size_t>(child)];
    contributed.insert(contributed.end(), merged_ranks.begin(), merged_ranks.end());
  }

  if (r == 0) {
    co_await thread.compute(costs.vt_stats_write_per_record * vt::nonzero_stat_count(acc));
    root_result_ = std::move(acc);
    ++rounds_;
    reg.add(tm.control_overlay_rounds);
    reg.observe(tm.control_overlay_fanin_ns,
                static_cast<std::uint64_t>(thread.engine().now() - entered));
    std::sort(contributed.begin(), contributed.end());
    if (static_cast<int>(contributed.size()) < p) {
      SyncReport report;
      report.round = round;
      for (int q = 0, c = 0; q < p; ++q) {
        while (c < static_cast<int>(contributed.size()) && contributed[c] < q) ++c;
        if (c >= static_cast<int>(contributed.size()) || contributed[c] != q) {
          report.missing.push_back(q);
        }
      }
      const int quorum_needed =
          static_cast<int>(std::ceil(ft.sync_quorum * static_cast<double>(p)));
      report.quorum_met = static_cast<int>(contributed.size()) >= quorum_needed;
      injector.report().add(
          thread.engine().now(), "partial-sync",
          str::format("round=%u got %zu of %d%s", round, contributed.size(), p,
                      report.quorum_met ? "" : " (below quorum)"),
          report.missing);
      partial_syncs_.push_back(std::move(report));
    }
  } else {
    int parent = plan.parent(r);
    while (parent != 0 && !alive(parent)) parent = plan.parent(parent);
    auto& slot = slots_[static_cast<std::size_t>(r)];
    slot = std::move(acc);
    contrib_slots_[static_cast<std::size_t>(r)] = std::move(contributed);
    co_await rank->send(thread, parent, overlay_tag(round), payload_bytes(slot, costs));
  }
}

}  // namespace dyntrace::control
