// Tree-based statistics aggregation overlay (the control plane's TBON).
//
// VT_confsync's legacy statistics path ships every rank's whole per-function
// table straight to rank 0, which formats and writes all P tables: O(P)
// messages into one endpoint and O(P * nfuncs) root work -- the climb of
// Figure 8(b).  The overlay arranges the ranks in a k-ary tree (children of
// rank r are k*r+1 .. k*r+k, the shape MRNet-style tool infrastructures
// use); every interior rank merges its children's records into its own
// before forwarding, so
//   * each endpoint handles at most k messages per sync,
//   * payloads carry only records with activity (sparse), and
//   * rank 0 writes one merged table instead of P.
// Statistics times are integral nanoseconds, so the tree-shaped merge is
// bit-identical to the linear fold (tests/control/test_overlay.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proc/process.hpp"
#include "vt/vtlib.hpp"

namespace dyntrace::fault {
class FaultInjector;
}  // namespace dyntrace::fault

namespace dyntrace::control {

/// Topology of a k-ary reduction tree over ranks 0..size-1, rooted at 0.
struct ReductionPlan {
  int size = 1;
  int arity = 4;

  int parent(int rank) const { return rank == 0 ? -1 : (rank - 1) / arity; }
  std::vector<int> children(int rank) const;
  bool is_leaf(int rank) const { return children(rank).empty(); }
  /// Levels below the root (0 for a single rank); the overlay's critical
  /// path grows with this instead of with size.
  int depth() const;
};

/// The overlay itself: one shared instance per job, installed on every
/// VtLib with set_stats_aggregator().  All ranks enter reduce() at the same
/// point of the VT_confsync protocol (the statistics phase), in lockstep.
class StatsOverlay : public vt::StatsAggregator {
 public:
  explicit StatsOverlay(int arity = 4);

  /// Pre-size the per-rank transport state for `size` ranks.  Required
  /// before a multi-shard run: the lazy sizing inside reduce() would be a
  /// data race when ranks on different shards enter their first sync
  /// concurrently.  Idempotent; sequential runs may skip it.
  void prepare(int size);

  /// Name this overlay's job for job-scoped fault verbs (multi-job runs;
  /// kill-rank job=... then only silences this overlay when the names
  /// match).  Set before the run starts; empty = unscoped queries.
  void set_job(std::string name) { job_ = std::move(name); }

  sim::Coro<void> reduce(proc::SimThread& thread, vt::VtLib& vt) override;

  int arity() const { return arity_; }
  /// Merged job-wide table from the most recent completed reduction.
  const std::vector<vt::FuncStats>& root_result() const { return root_result_; }
  /// Completed root reductions.
  std::uint64_t rounds() const { return rounds_; }

  /// Outcome of one degraded sync in fault-tolerant mode: which ranks'
  /// statistics never reached the root, and whether the configured quorum
  /// (machine fault.sync_quorum) was still met.
  struct SyncReport {
    std::uint64_t round = 0;
    std::vector<int> missing;  ///< ranks absent from the merged result, ascending
    bool quorum_met = true;
  };
  /// One entry per sync that completed without full participation.
  const std::vector<SyncReport>& partial_syncs() const { return partial_syncs_; }

 private:
  /// Fault-tolerant reduction: dead interior nodes are spliced out (their
  /// children re-parent to the first live ancestor), each child wait is
  /// bounded by fault.overlay_child_timeout, and the root reports partial
  /// participation instead of hanging.
  sim::Coro<void> reduce_ft(proc::SimThread& thread, vt::VtLib& vt,
                            fault::FaultInjector& injector);

  int arity_;
  std::string job_;  ///< fault-verb job scope (empty outside multi-job runs)
  // Host-side record transport: a sender publishes its merged table in its
  // slot *before* injecting the wire message, and the parent reads the slot
  // only after the (strictly later) delivery -- the message carries timing,
  // the slot carries the payload.
  std::vector<std::vector<vt::FuncStats>> slots_;
  std::vector<std::vector<int>> contrib_slots_;  ///< ranks merged into each slot
  std::vector<std::uint32_t> round_;  ///< per-rank sync counter (tag salt)
  std::vector<vt::FuncStats> root_result_;
  std::uint64_t rounds_ = 0;
  std::vector<SyncReport> partial_syncs_;
};

}  // namespace dyntrace::control
